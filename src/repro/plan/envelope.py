"""Forecast safety envelope: trust gating for the predictive planner.

Two mechanisms keep a wrong forecast from ever costing more than the
reactive path:

1. **Budget clamp** — every planned budget is solved against
   ``min(forecast, last-observed)`` (:meth:`SafetyEnvelope.bound`), and at
   dispatch time the manager additionally requires the planned total to fit
   inside the budget derived from the *actual* target just read.  A
   forecast can therefore only move power *earlier* or *lower*, never push
   realized draw above what the reactive controller would allow.

2. **State machine** — ``shadow → active → fallback``:

   * ``shadow``: the planner builds and scores plans but none are applied;
     behaviour is observationally identical to reactive.  Promotion to
     ``active`` requires ``promote_rounds`` consecutive scored rounds with
     windowed MAE inside ``error_bound_watts`` (``promote_rounds = 0``
     starts active — used by drills and trusted schedule forecasters).
   * ``active``: planned caps are dispatched and plan instants drive extra
     control rounds.  If windowed MAE exceeds the bound (with at least
     ``min_trip_samples`` scores in the window), the envelope trips to
     ``fallback``.
   * ``fallback``: reactive behaviour again; the forecaster keeps being
     scored, and once MAE stays inside the bound for ``promote_rounds``
     consecutive rounds the envelope returns to ``shadow`` (or directly to
     ``active`` when ``promote_rounds = 0``) to re-earn trust.

Leases, the facility breaker, and quarantine budgeting are enforced in the
manager *after* any plan is consumed, so they always take precedence over
planned caps.
"""

from __future__ import annotations

__all__ = [
    "PLAN_SHADOW",
    "PLAN_ACTIVE",
    "PLAN_FALLBACK",
    "PLAN_STATE_GAUGE",
    "SafetyEnvelope",
]

PLAN_SHADOW = "shadow"
PLAN_ACTIVE = "active"
PLAN_FALLBACK = "fallback"

#: numeric encoding used by the ``anor_plan_state`` gauge
PLAN_STATE_GAUGE = {PLAN_SHADOW: 0.0, PLAN_ACTIVE: 1.0, PLAN_FALLBACK: 2.0}


class SafetyEnvelope:
    """Windowed-error trust gate around a forecaster's predictions."""

    def __init__(
        self,
        *,
        error_bound_watts: float,
        promote_rounds: int = 4,
        min_trip_samples: int = 4,
    ) -> None:
        if error_bound_watts <= 0:
            raise ValueError(
                f"error_bound_watts must be positive, got {error_bound_watts}"
            )
        if promote_rounds < 0:
            raise ValueError(f"promote_rounds must be ≥ 0, got {promote_rounds}")
        if min_trip_samples < 1:
            raise ValueError(f"min_trip_samples must be ≥ 1, got {min_trip_samples}")
        self.error_bound_watts = float(error_bound_watts)
        self.promote_rounds = int(promote_rounds)
        self.min_trip_samples = int(min_trip_samples)
        self.state = PLAN_ACTIVE if self.promote_rounds == 0 else PLAN_SHADOW
        self.fallbacks = 0
        self.transitions: list[tuple[float, str, str]] = []
        self._ok_streak = 0

    @property
    def gauge(self) -> float:
        """Numeric state for the ``anor_plan_state`` gauge."""
        return PLAN_STATE_GAUGE[self.state]

    @staticmethod
    def bound(forecast_watts: float, observed_watts: float) -> float:
        """The planning target the envelope permits: min(forecast, observed)."""
        return min(float(forecast_watts), float(observed_watts))

    def _transition(self, now: float, new_state: str) -> None:
        self.transitions.append((now, self.state, new_state))
        self.state = new_state
        self._ok_streak = 0

    def update(self, now: float, mae: float, samples: int) -> str:
        """Advance the state machine with the current windowed error.

        ``mae`` is the forecaster's sliding-window mean absolute error and
        ``samples`` the number of scored rounds currently in the window.
        Returns the (possibly new) state.
        """
        ok = mae <= self.error_bound_watts
        if self.state == PLAN_SHADOW:
            self._ok_streak = self._ok_streak + 1 if ok else 0
            if self.promote_rounds == 0 or self._ok_streak >= self.promote_rounds:
                self._transition(now, PLAN_ACTIVE)
        elif self.state == PLAN_ACTIVE:
            if not ok and samples >= self.min_trip_samples:
                self.fallbacks += 1
                self._transition(now, PLAN_FALLBACK)
        else:  # PLAN_FALLBACK
            self._ok_streak = self._ok_streak + 1 if ok else 0
            if self._ok_streak >= max(self.promote_rounds, 1):
                self._transition(
                    now, PLAN_ACTIVE if self.promote_rounds == 0 else PLAN_SHADOW
                )
        return self.state

    def first_fallback_time(self) -> float | None:
        """Time of the first active→fallback transition, if any."""
        for time, _, new in self.transitions:
            if new == PLAN_FALLBACK:
                return time
        return None

    def first_active_time(self) -> float | None:
        """Time the envelope first reached ``active`` (None if it started there
        and never transitioned)."""
        for time, _, new in self.transitions:
            if new == PLAN_ACTIVE:
                return time
        return None
