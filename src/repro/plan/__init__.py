"""Predictive planning subsystem: forecasters, receding-horizon planner,
and the forecast safety envelope (ROADMAP "planning layer").

The reactive control plane re-solves the budgeter from the *current* target
sample every round, so every downward step is first seen as a tracking
error.  This package adds a lookahead layer:

* :mod:`repro.plan.forecast` — ``TargetForecaster`` implementations that
  turn past target samples (or exact file-backed breakpoints) into a
  horizon of ``(t, ŷ, confidence)`` points with online error tracking.
* :mod:`repro.plan.planner` — ``RecedingHorizonPlanner`` pre-solves the
  budgeter over the next H control rounds, yielding per-job cap
  trajectories with cap-churn hysteresis, and exposes upcoming plan
  instants to the event calendar so striding stays exact.
* :mod:`repro.plan.envelope` — ``SafetyEnvelope`` clamps every planned
  budget to ``min(forecast, last-observed)`` and runs the
  ``shadow → active → fallback`` state machine that reverts to the
  reactive path when windowed forecast error exceeds its bound.

Everything is opt-in via ``AnorConfig.plan_*``; with the knobs off the
control plane is bit-identical to the reactive seed behaviour.
"""

from repro.plan.envelope import (
    PLAN_ACTIVE,
    PLAN_FALLBACK,
    PLAN_SHADOW,
    SafetyEnvelope,
)
from repro.plan.forecast import (
    AR1Forecaster,
    ForecastErrorWindow,
    ForecastPoint,
    InvertedRampForecaster,
    PersistenceForecaster,
    RampForecaster,
    ScheduleForecaster,
    TargetForecaster,
    make_forecaster,
)
from repro.plan.planner import Plan, PlannedRound, RecedingHorizonPlanner

__all__ = [
    "AR1Forecaster",
    "ForecastErrorWindow",
    "ForecastPoint",
    "InvertedRampForecaster",
    "PersistenceForecaster",
    "Plan",
    "PlannedRound",
    "PLAN_ACTIVE",
    "PLAN_FALLBACK",
    "PLAN_SHADOW",
    "RampForecaster",
    "RecedingHorizonPlanner",
    "SafetyEnvelope",
    "ScheduleForecaster",
    "TargetForecaster",
    "make_forecaster",
]
