"""Power-tracking accuracy metrics (paper §4.4.2, §6.3).

Tracking error is "calculated as distance between the measured power and the
target power, divided by the reserve".  The paper's constraint allows "no
more than 30 % error for at least 90 % of the time"; §6.3 reports measured
error under 24 % at the 90th percentile in the worst case and within 17 %
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "tracking_error_series",
    "fraction_within",
    "error_percentile",
    "TrackingConstraint",
]


def tracking_error_series(
    trace: np.ndarray,
    reserve: float,
    *,
    t_start: float | None = None,
    t_end: float | None = None,
    smooth_samples: int = 1,
) -> np.ndarray:
    """Per-sample tracking error from a (time, target, measured) trace.

    ``smooth_samples`` applies a moving average to the *measured* column
    before scoring.  Demand-response compliance is assessed on energy-based
    power over the signal period (the paper's CPU power comes from energy
    counters, §5.4), so scoring the instantaneous 1 s meter would penalise
    sub-period churn the grid never sees; pass the target-update period
    (4 samples at 1 Hz for Fig. 9) to evaluate like-for-like.
    """
    trace = np.asarray(trace, dtype=float)
    if trace.ndim != 2 or trace.shape[1] != 3:
        raise ValueError(f"expected (n, 3) trace, got {trace.shape}")
    if reserve <= 0:
        raise ValueError(f"reserve must be positive, got {reserve}")
    if smooth_samples < 1:
        raise ValueError(f"smooth_samples must be ≥ 1, got {smooth_samples}")
    measured = trace[:, 2]
    if smooth_samples > 1 and measured.size >= smooth_samples:
        kernel = np.ones(smooth_samples) / smooth_samples
        measured = np.convolve(measured, kernel, mode="same")
    mask = np.ones(trace.shape[0], dtype=bool)
    if t_start is not None:
        mask &= trace[:, 0] >= t_start
    if t_end is not None:
        mask &= trace[:, 0] <= t_end
    return np.abs(measured[mask] - trace[mask, 1]) / reserve


def fraction_within(errors: Sequence[float], limit: float) -> float:
    """Fraction of samples with error ≤ limit."""
    arr = np.asarray(errors, dtype=float)
    if arr.size == 0:
        raise ValueError("no error samples")
    return float(np.mean(arr <= limit))


def error_percentile(errors: Sequence[float], q: float = 90.0) -> float:
    arr = np.asarray(errors, dtype=float)
    if arr.size == 0:
        raise ValueError("no error samples")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class TrackingConstraint:
    """AQA's tracking constraint: error ≤ ``max_error`` for ≥ ``probability``."""

    max_error: float = 0.30
    probability: float = 0.90

    def __post_init__(self) -> None:
        if self.max_error <= 0:
            raise ValueError(f"max_error must be positive, got {self.max_error}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")

    def satisfied(self, errors: Sequence[float]) -> bool:
        return fraction_within(errors, self.max_error) >= self.probability

    def observed_percentile(self, errors: Sequence[float]) -> float:
        """Error at the constraint's probability (the §6.3 headline number)."""
        return error_percentile(errors, 100.0 * self.probability)
