"""Offline slowdown estimation under shared budgets (paper §6.1, Figs. 4–5).

The budgeter chooses caps from the models it *believes*; each job then slows
down according to its *true* curve.  Splitting believed from true models is
what lets these analyses quantify misclassification: the "mischaracterized"
budgeter of Fig. 5 believes FT is IS (or EP), allocates accordingly, and the
resulting slowdowns are read off FT's real curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.budget.base import JobBudgetRequest, PowerBudgeter
from repro.modeling.quadratic import QuadraticPowerModel

__all__ = ["JobScenario", "estimate_scenario_slowdowns", "sweep_budgets"]


@dataclass(frozen=True)
class JobScenario:
    """One job in an offline what-if: its truth and what the budgeter thinks."""

    job_id: str
    nodes: int
    true_model: QuadraticPowerModel
    believed_model: QuadraticPowerModel
    p_min: float
    p_max: float

    @classmethod
    def known(
        cls,
        job_id: str,
        nodes: int,
        model: QuadraticPowerModel,
        p_min: float,
        p_max: float,
    ) -> "JobScenario":
        """A correctly characterized job: believed = true."""
        return cls(
            job_id=job_id,
            nodes=nodes,
            true_model=model,
            believed_model=model,
            p_min=p_min,
            p_max=p_max,
        )

    def to_request(self) -> JobBudgetRequest:
        return JobBudgetRequest(
            job_id=self.job_id,
            nodes=self.nodes,
            model=self.believed_model,
            p_min=self.p_min,
            p_max=self.p_max,
        )

    def true_slowdown(self, p_cap: float) -> float:
        """Fractional slowdown the job really experiences at ``p_cap``."""
        return self.true_model.slowdown_at(p_cap)


def estimate_scenario_slowdowns(
    scenarios: Sequence[JobScenario],
    budgeter: PowerBudgeter,
    budget: float,
) -> dict[str, float]:
    """Per-job true slowdown when ``budgeter`` splits ``budget`` (fractions)."""
    allocation = budgeter.allocate([s.to_request() for s in scenarios], budget)
    return {s.job_id: s.true_slowdown(allocation.caps[s.job_id]) for s in scenarios}


def sweep_budgets(
    scenarios: Sequence[JobScenario],
    budgeter: PowerBudgeter,
    budgets: Sequence[float],
) -> dict[str, np.ndarray]:
    """Slowdown-vs-budget curves for each job (the Fig. 4/5 series)."""
    budgets = list(budgets)
    out = {s.job_id: np.empty(len(budgets)) for s in scenarios}
    for i, budget in enumerate(budgets):
        slowdowns = estimate_scenario_slowdowns(scenarios, budgeter, budget)
        for job_id, slowdown in slowdowns.items():
            out[job_id][i] = slowdown
    return out
