"""Offline analyses and metrics shared by the experiment harnesses."""

from repro.analysis.tracking import (
    TrackingConstraint,
    error_percentile,
    fraction_within,
    tracking_error_series,
)
from repro.analysis.export import (
    export_fig4,
    export_fig5,
    export_fig11,
    export_power_trace,
    export_series_by_key,
)
from repro.analysis.slowdown import (
    JobScenario,
    estimate_scenario_slowdowns,
    sweep_budgets,
)

__all__ = [
    "TrackingConstraint",
    "error_percentile",
    "fraction_within",
    "tracking_error_series",
    "JobScenario",
    "estimate_scenario_slowdowns",
    "sweep_budgets",
    "export_fig4",
    "export_fig5",
    "export_fig11",
    "export_power_trace",
    "export_series_by_key",
]
