"""CSV exporters for experiment results.

Every figure harness returns structured results; these helpers write the
plotted series as plain CSV so the figures can be regenerated in any
plotting tool without rerunning the experiments.  One file per figure,
columns named after the paper's axes.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

__all__ = [
    "export_power_trace",
    "export_series_by_key",
    "export_fig4",
    "export_fig5",
    "export_fig11",
]


def export_power_trace(trace: np.ndarray, path: str | Path) -> None:
    """Write a (time, target, measured) trace — Fig. 9's two series."""
    trace = np.asarray(trace, dtype=float)
    if trace.ndim != 2 or trace.shape[1] != 3:
        raise ValueError(f"expected (n, 3) trace, got {trace.shape}")
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "target_w", "measured_w"])
        for row in trace:
            writer.writerow([f"{v:.3f}" for v in row])


def export_series_by_key(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    path: str | Path,
    *,
    x_name: str = "x",
) -> None:
    """Write one x column plus one column per keyed series."""
    x = np.asarray(x, dtype=float)
    keys = sorted(series)
    for key in keys:
        if len(series[key]) != x.size:
            raise ValueError(
                f"series {key!r} has {len(series[key])} points, x has {x.size}"
            )
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_name] + keys)
        for i in range(x.size):
            writer.writerow(
                [f"{x[i]:.6g}"] + [f"{float(series[k][i]):.6g}" for k in keys]
            )


def export_fig4(result, path: str | Path) -> None:
    """Fig. 4: per-type slowdown vs budget, one column per policy/type."""
    series: dict[str, np.ndarray] = {}
    for policy, by_type in result.slowdowns.items():
        for type_name, values in by_type.items():
            series[f"{policy}/{type_name}"] = values
    export_series_by_key(result.budgets, series, path, x_name="budget_w")


def export_fig5(result, directory: str | Path) -> list[Path]:
    """Fig. 5: one CSV per subplot case; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for case_key, by_budgeter in result.slowdowns.items():
        series: dict[str, np.ndarray] = {}
        for budgeter, by_job in by_budgeter.items():
            for job_id, values in by_job.items():
                series[f"{budgeter}/{job_id}"] = values
        path = directory / f"fig5_{case_key}.csv"
        export_series_by_key(result.budgets[case_key], series, path, x_name="budget_w")
        written.append(path)
    return written


def export_fig11(result, path: str | Path) -> None:
    """Fig. 11: mean 90th-pct QoS degradation per type vs variation band."""
    bands = np.asarray(result.bands, dtype=float)
    series = {
        name: result.qos90[name].mean(axis=1) for name in sorted(result.qos90)
    }
    series["tracking_err90"] = result.tracking90.mean(axis=1)
    export_series_by_key(bands, series, path, x_name="variation_band")
