"""Multi-hour demand-response operation (paper §4.4.1).

"The bidding decision is made once per hour, influencing the range of power
targets that will be received until the next bid."  A
:class:`DemandResponseSession` strings consecutive hours together: before
each hour it re-runs the bid search (using short evaluation simulations of
the *upcoming* conditions), commits the winning (P̄, R) for the hour,
executes it, and accounts QoS, tracking and electricity cost hour by hour.

The session is generic over how an hour is simulated: callers supply an
``hour_runner`` returning the realised metrics for a bid, so the same
orchestration drives the tabular simulator, the emulated cluster, or toy
models in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.aqa.bidder import Bid, BidEvaluation, DemandResponseBidder

__all__ = ["HourMetrics", "HourRecord", "DemandResponseSession"]


@dataclass(frozen=True)
class HourMetrics:
    """What actually happened during one committed hour."""

    qos_90th: float
    tracking_error_90th: float
    mean_power: float
    jobs_completed: int

    def __post_init__(self) -> None:
        if self.mean_power < 0:
            raise ValueError(f"mean power must be ≥ 0, got {self.mean_power}")
        if self.jobs_completed < 0:
            raise ValueError(f"jobs completed must be ≥ 0, got {self.jobs_completed}")


@dataclass(frozen=True)
class HourRecord:
    """One hour of operation: the committed bid and its realised outcome."""

    hour: int
    bid: Bid
    metrics: HourMetrics
    cost: float  # $-scale cost of the hour (energy − reserve credit)
    candidates_evaluated: int


@dataclass
class DemandResponseSession:
    """Hourly re-bidding loop.

    Parameters
    ----------
    bidder:
        The (P̄, R) grid search with its cost model.
    evaluate:
        Scores a candidate bid for the *upcoming* hour — typically a short,
        cheap simulation (the paper tunes AQA "over simulations of expected
        power-constraint and job-submission scenarios", §4.4.2).  Signature:
        ``evaluate(bid, hour) -> BidEvaluation``.
    run_hour:
        Executes a full committed hour under the bid and returns the
        realised :class:`HourMetrics`.  Signature: ``run_hour(bid, hour)``.
    carry_bid_on_failure:
        When no candidate is feasible for an hour, reuse the previous hour's
        bid instead of raising (a cluster cannot simply unplug mid-session);
        the first hour still raises, since nothing was ever committed.
    """

    bidder: DemandResponseBidder
    evaluate: Callable[[Bid, int], BidEvaluation]
    run_hour: Callable[[Bid, int], HourMetrics]
    carry_bid_on_failure: bool = True
    records: list[HourRecord] = field(default_factory=list)

    def run(self, hours: int) -> list[HourRecord]:
        """Operate for ``hours`` consecutive hours; returns the ledger."""
        if hours < 1:
            raise ValueError(f"hours must be ≥ 1, got {hours}")
        previous_bid: Bid | None = None
        for hour in range(hours):
            candidates = self.bidder.candidates()
            try:
                bid, evaluations = self.bidder.select(
                    lambda b: self.evaluate(b, hour), candidates=candidates
                )
                evaluated = len(evaluations)
            except RuntimeError:
                if previous_bid is None or not self.carry_bid_on_failure:
                    raise
                bid, evaluated = previous_bid, len(candidates)
            metrics = self.run_hour(bid, hour)
            cost = self.bidder.cost_rate(bid)
            self.records.append(
                HourRecord(
                    hour=hour,
                    bid=bid,
                    metrics=metrics,
                    cost=cost,
                    candidates_evaluated=evaluated,
                )
            )
            previous_bid = bid
        return self.records

    # ------------------------------------------------------------- summaries

    @property
    def total_cost(self) -> float:
        return sum(r.cost for r in self.records)

    @property
    def total_jobs(self) -> int:
        return sum(r.metrics.jobs_completed for r in self.records)

    def worst_qos(self) -> float:
        if not self.records:
            raise ValueError("no hours recorded")
        return max(r.metrics.qos_90th for r in self.records)

    def worst_tracking(self) -> float:
        if not self.records:
            raise ValueError("no hours recorded")
        return max(r.metrics.tracking_error_90th for r in self.records)

    def bids_over_time(self) -> np.ndarray:
        """(hours, 2) array of committed (average, reserve) per hour."""
        return np.array(
            [[r.bid.average_power, r.bid.reserve] for r in self.records]
        )

    def format_ledger(self) -> str:
        rows = [
            f"{'hour':>5} {'P̄ (kW)':>9} {'R (kW)':>8} {'QoS90':>7} "
            f"{'err90':>7} {'jobs':>6} {'cost':>8}"
        ]
        for r in self.records:
            rows.append(
                f"{r.hour:>5} {r.bid.average_power / 1000:>9.1f} "
                f"{r.bid.reserve / 1000:>8.2f} {r.metrics.qos_90th:>7.2f} "
                f"{100 * r.metrics.tracking_error_90th:>6.1f}% "
                f"{r.metrics.jobs_completed:>6} {r.cost / 1000:>8.1f}"
            )
        return "\n".join(rows)
