"""AQA: the Adaptive policy with QoS Assurance (Zhang et al. [29], paper §4.4).

The paper bases its demand-response bidder, job scheduler, and power budgeter
on AQA.  This package implements the pieces ANOR uses:

* :mod:`repro.aqa.qos` — probabilistic QoS constraints (Q ≤ 5 at 90 %).
* :mod:`repro.aqa.regulation` — regulation-signal generators y(t) ∈ [−1, 1].
* :mod:`repro.aqa.queues` — per-job-type work queues with node-share weights.
* :mod:`repro.aqa.scheduler` — weight-proportional node allocation.
* :mod:`repro.aqa.bidder` — (average power, reserve) bid search under QoS
  and power-tracking constraints.
* :mod:`repro.aqa.training` — queue-weight tuning over simulated scenarios,
  including random sampling of properties for unknown job types (§4.4.2).
"""

from repro.aqa.qos import QoSConstraint, generate_queue_trace, qos_degradation
from repro.aqa.regulation import (
    BoundedRandomWalkSignal,
    RegulationSignal,
    SinusoidSignal,
    TabulatedSignal,
)
from repro.aqa.queues import QueueSet, WorkQueue
from repro.aqa.scheduler import WeightedScheduler
from repro.aqa.bidder import Bid, BidEvaluation, DemandResponseBidder
from repro.aqa.session import DemandResponseSession, HourMetrics, HourRecord
from repro.aqa.training import TrainingResult, train_queue_weights, sample_unknown_type

__all__ = [
    "QoSConstraint",
    "generate_queue_trace",
    "qos_degradation",
    "BoundedRandomWalkSignal",
    "RegulationSignal",
    "SinusoidSignal",
    "TabulatedSignal",
    "QueueSet",
    "WorkQueue",
    "WeightedScheduler",
    "Bid",
    "BidEvaluation",
    "DemandResponseBidder",
    "DemandResponseSession",
    "HourMetrics",
    "HourRecord",
    "TrainingResult",
    "train_queue_weights",
    "sample_unknown_type",
]
