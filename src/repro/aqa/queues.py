"""Per-job-type work queues with node-share weights (paper §4.4.2).

AQA "models job types as a collection of work queues.  Each queue is
assigned a weight of node allocations that is tuned over simulations ...
Compute nodes are allocated so that queues with greater weight are assigned
more nodes."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable

import numpy as np

__all__ = ["QueuedJob", "WorkQueue", "QueueSet"]


@dataclass(frozen=True)
class QueuedJob:
    """A pending job inside a work queue."""

    job_id: str
    type_name: str
    nodes: int
    submit_time: float


@dataclass
class WorkQueue:
    """FIFO queue of pending jobs of one type, plus its allocation weight."""

    type_name: str
    weight: float = 1.0
    pending: Deque[QueuedJob] = field(default_factory=deque)
    running_nodes: int = 0  # nodes currently held by this queue's jobs

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"{self.type_name}: weight must be ≥ 0, got {self.weight}")

    def push(self, job: QueuedJob) -> None:
        if job.type_name != self.type_name:
            raise ValueError(
                f"job {job.job_id} of type {job.type_name!r} "
                f"pushed to queue {self.type_name!r}"
            )
        self.pending.append(job)

    def peek(self) -> QueuedJob | None:
        return self.pending[0] if self.pending else None

    def pop(self) -> QueuedJob:
        return self.pending.popleft()

    def __len__(self) -> int:
        return len(self.pending)


class QueueSet:
    """All work queues plus weight-proportional node shares."""

    def __init__(self, queues: Iterable[WorkQueue]) -> None:
        self.queues = {q.type_name: q for q in queues}
        if not self.queues:
            raise ValueError("need at least one work queue")

    def __getitem__(self, type_name: str) -> WorkQueue:
        return self.queues[type_name]

    def __iter__(self):
        return iter(self.queues.values())

    def submit(self, job: QueuedJob) -> None:
        try:
            self.queues[job.type_name].push(job)
        except KeyError:
            raise KeyError(
                f"no queue for job type {job.type_name!r}; "
                f"known: {sorted(self.queues)}"
            ) from None

    def node_shares(self, total_nodes: int) -> dict[str, float]:
        """Fractional node allocation per queue, proportional to weight."""
        weights = np.array([q.weight for q in self.queues.values()], dtype=float)
        total = weights.sum()
        if total == 0:
            # Degenerate: all weights zero means equal shares.
            weights = np.ones_like(weights)
            total = weights.sum()
        return {
            name: total_nodes * w / total
            for name, w in zip(self.queues.keys(), weights)
        }

    def set_weights(self, weights: dict[str, float]) -> None:
        for name, w in weights.items():
            if name not in self.queues:
                raise KeyError(f"no queue named {name!r}")
            if w < 0:
                raise ValueError(f"{name}: weight must be ≥ 0, got {w}")
            self.queues[name].weight = float(w)

    @property
    def total_pending(self) -> int:
        return sum(len(q) for q in self.queues.values())
