"""Demand-response regulation signals y(t) ∈ [−1, 1] (paper §5.6).

The grid sends a time-varying regulation signal; the cluster's power target
is ``P̄ + R·y(t)``.  Real regulation-market signals (e.g. PJM RegD) are
bounded and mean-reverting; :class:`BoundedRandomWalkSignal` reproduces
those statistics, :class:`SinusoidSignal` gives a deterministic stand-in for
tests, and :class:`TabulatedSignal` replays a recorded series.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.util.rng import ensure_rng

__all__ = [
    "RegulationSignal",
    "BoundedRandomWalkSignal",
    "SinusoidSignal",
    "TabulatedSignal",
]


class RegulationSignal(ABC):
    """A deterministic function of time into [−1, 1]."""

    @abstractmethod
    def value(self, t: float) -> float:
        """Signal value at time ``t`` (seconds)."""

    def __call__(self, t: float) -> float:
        return self.value(t)

    def series(self, times: Sequence[float]) -> np.ndarray:
        """Sample the signal at every instant in ``times``, vectorised.

        The generic fallback loops over :meth:`value`; concrete signals
        override this with array arithmetic.  Forecaster fits
        (:meth:`repro.plan.forecast.AR1Forecaster.fit_regulation`) sample
        thousands of points through this path.
        """
        return np.array([self.value(float(t)) for t in times])


class SinusoidSignal(RegulationSignal):
    """y(t) = amplitude · sin(2πt/period + phase)."""

    def __init__(self, period: float = 600.0, amplitude: float = 1.0, phase: float = 0.0):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
        self.period = float(period)
        self.amplitude = float(amplitude)
        self.phase = float(phase)

    def value(self, t: float) -> float:
        return self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)

    def series(self, times: Sequence[float]) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        return self.amplitude * np.sin(2.0 * np.pi * t / self.period + self.phase)


class BoundedRandomWalkSignal(RegulationSignal):
    """Mean-reverting AR(1) walk, precomputed on a fixed step grid.

    ``y_{k+1} = clip(ρ·y_k + ε_k)`` with ε ~ N(0, σ).  The whole trajectory
    is generated at construction so that ``value`` is a pure function of
    time — different consumers reading the signal out of order see the same
    series (determinism the simulators rely on).
    """

    def __init__(
        self,
        duration: float,
        *,
        step: float = 4.0,
        rho: float = 0.97,
        sigma: float = 0.15,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if duration <= 0 or step <= 0:
            raise ValueError("duration and step must be positive")
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        rng = ensure_rng(seed)
        n = int(math.ceil(duration / step)) + 1
        values = np.empty(n)
        y = 0.0
        for i in range(n):
            values[i] = y
            y = float(np.clip(rho * y + rng.normal(0.0, sigma), -1.0, 1.0))
        self.step = float(step)
        self.duration = float(duration)
        self._values = values

    def value(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"time must be ≥ 0, got {t}")
        idx = min(int(t / self.step), self._values.size - 1)
        return float(self._values[idx])

    def series(self, times: Sequence[float]) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        if np.any(t < 0):
            raise ValueError("times must be ≥ 0")
        idx = np.minimum((t / self.step).astype(int), self._values.size - 1)
        return self._values[idx]


class TabulatedSignal(RegulationSignal):
    """Zero-order-hold replay of (time, value) breakpoints.

    ``times`` must be strictly increasing: the zero-order-hold lookup is a
    binary search, and an out-of-order or duplicated breakpoint would make
    it return values from the wrong segment without any error at read time.
    Construction therefore rejects non-monotone tables, naming the first
    offending index.
    """

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or t.shape != v.shape or t.size == 0:
            raise ValueError(f"need matching non-empty 1-D arrays, got {t.shape}, {v.shape}")
        bad = np.flatnonzero(np.diff(t) <= 0)
        if bad.size:
            i = int(bad[0])
            raise ValueError(
                f"TabulatedSignal times must be strictly increasing: "
                f"times[{i}]={t[i]} ≥ times[{i + 1}]={t[i + 1]}"
            )
        if np.any(np.abs(v) > 1.0 + 1e-12):
            raise ValueError("regulation values must lie in [-1, 1]")
        self._times = t
        self._values = v

    def value(self, t: float) -> float:
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        idx = max(0, min(idx, self._values.size - 1))
        return float(self._values[idx])

    def series(self, times: Sequence[float]) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        idx = np.searchsorted(self._times, t, side="right") - 1
        idx = np.clip(idx, 0, self._values.size - 1)
        return self._values[idx]
