"""Weight-proportional job scheduling (paper §4.4.2).

Each scheduling round, every queue may hold at most its weight-proportional
share of cluster nodes; the head job of a queue starts as soon as (a) the
queue is under its share and (b) enough idle nodes exist.  Queues that would
exceed their share wait even if nodes are idle — that headroom is what AQA
trades for demand-response flexibility ("primarily reducing power by
refraining from scheduling jobs to idle nodes", §6.4).  An optional
work-conserving fallback lends unused share to other queues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aqa.queues import QueuedJob, QueueSet

__all__ = ["SchedulingDecision", "WeightedScheduler"]


@dataclass(frozen=True)
class SchedulingDecision:
    """Jobs the scheduler chose to start this round, in start order."""

    to_start: list[QueuedJob]
    idle_nodes_after: int


class WeightedScheduler:
    """Starts queued jobs subject to weight-proportional node shares."""

    def __init__(self, queues: QueueSet, *, work_conserving: bool = False) -> None:
        self.queues = queues
        self.work_conserving = bool(work_conserving)

    def schedule(self, idle_nodes: int) -> SchedulingDecision:
        """Choose jobs to start given ``idle_nodes`` free nodes.

        Callers must afterwards update each queue's ``running_nodes`` when
        jobs start and finish (see :meth:`job_started` / :meth:`job_finished`).
        """
        if idle_nodes < 0:
            raise ValueError(f"idle_nodes must be ≥ 0, got {idle_nodes}")
        total_nodes = idle_nodes + sum(q.running_nodes for q in self.queues)
        shares = self.queues.node_shares(total_nodes)
        to_start: list[QueuedJob] = []
        free = idle_nodes
        # Round-robin across queues ordered by descending weight so heavier
        # queues get first pick, until no queue can start anything.
        by_weight = sorted(self.queues, key=lambda q: (-q.weight, q.type_name))
        progressing = True
        while progressing and free > 0:
            progressing = False
            for queue in by_weight:
                head = queue.peek()
                if head is None or head.nodes > free:
                    continue
                if queue.running_nodes + head.nodes > shares[queue.type_name] + 1e-9:
                    continue
                queue.pop()
                queue.running_nodes += head.nodes
                free -= head.nodes
                to_start.append(head)
                progressing = True
        if self.work_conserving and free > 0:
            # Lend leftover nodes share-agnostically, FIFO by submit time.
            progressing = True
            while progressing and free > 0:
                progressing = False
                heads = [
                    (q.peek(), q)
                    for q in self.queues
                    if q.peek() is not None and q.peek().nodes <= free
                ]
                if heads:
                    head, queue = min(heads, key=lambda hq: hq[0].submit_time)
                    queue.pop()
                    queue.running_nodes += head.nodes
                    free -= head.nodes
                    to_start.append(head)
                    progressing = True
        return SchedulingDecision(to_start=to_start, idle_nodes_after=free)

    def job_finished(self, type_name: str, nodes: int) -> None:
        """Release a finished job's nodes back to its queue's accounting."""
        queue = self.queues[type_name]
        if queue.running_nodes < nodes:
            raise ValueError(
                f"queue {type_name!r} releasing {nodes} nodes "
                f"but only holds {queue.running_nodes}"
            )
        queue.running_nodes -= nodes
