"""Queue-weight training and unknown-type sampling (paper §4.4.2).

AQA tunes each queue's node-allocation weight "over simulations of expected
power-constraint and job-submission scenarios".  For job types unknown at
training time, the paper simulates a known minimum execution time and
randomly samples the achievable power range and maximum slowdown from those
of known types — :func:`sample_unknown_type` implements that rule.

:func:`train_queue_weights` is a seeded random-restart coordinate search:
generic over the evaluation function so the same trainer drives both the
tabular simulator and unit-test toy objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["TrainingResult", "train_queue_weights", "sample_unknown_type", "UnknownTypeProperties"]


@dataclass(frozen=True)
class TrainingResult:
    """Best weights found and the search trajectory."""

    weights: dict[str, float]
    score: float
    evaluations: int
    history: tuple[float, ...]  # best-so-far score after each evaluation


def train_queue_weights(
    evaluate: Callable[[Mapping[str, float]], float],
    queue_names: Sequence[str],
    *,
    iterations: int = 40,
    seed: int | np.random.Generator | None = 0,
    init: Mapping[str, float] | None = None,
    step: float = 0.5,
) -> TrainingResult:
    """Minimise ``evaluate(weights)`` over positive per-queue weights.

    The search perturbs one random coordinate at a time by a multiplicative
    factor, keeping improvements (weights are scale-free — only ratios
    matter to :meth:`~repro.aqa.queues.QueueSet.node_shares` — so the walk
    explores ratios).  ``evaluate`` should fold constraint violations into
    the score (e.g. large penalties), matching how AQA couples cost with QoS
    and tracking feasibility.
    """
    if not queue_names:
        raise ValueError("need at least one queue")
    if iterations < 1:
        raise ValueError(f"iterations must be ≥ 1, got {iterations}")
    rng = ensure_rng(seed)
    names = list(queue_names)
    current = {n: 1.0 for n in names}
    if init is not None:
        for n, w in init.items():
            if n not in current:
                raise KeyError(f"unknown queue {n!r}")
            if w <= 0:
                raise ValueError(f"{n}: initial weight must be positive, got {w}")
            current[n] = float(w)
    best_score = float(evaluate(current))
    best = dict(current)
    history = [best_score]
    evaluations = 1
    for _ in range(iterations):
        name = names[int(rng.integers(len(names)))]
        factor = float(np.exp(rng.normal(0.0, step)))
        trial = dict(best)
        trial[name] = max(1e-6, trial[name] * factor)
        score = float(evaluate(trial))
        evaluations += 1
        if score < best_score:
            best_score = score
            best = trial
        history.append(best_score)
    return TrainingResult(
        weights=best,
        score=best_score,
        evaluations=evaluations,
        history=tuple(history),
    )


@dataclass(frozen=True)
class UnknownTypeProperties:
    """Simulated properties for a job type unknown at AQA-training time."""

    t_min: float  # provided at launch time, like a job time limit
    p_min: float
    p_max: float
    max_slowdown: float  # slowdown at the minimum power cap


def sample_unknown_type(
    t_min: float,
    known_power_ranges: Sequence[tuple[float, float]],
    known_max_slowdowns: Sequence[float],
    *,
    seed: int | np.random.Generator | None = None,
) -> UnknownTypeProperties:
    """Simulate an unknown type's properties for AQA training (§4.4.2).

    The minimum execution time is taken as given (the user-supplied limit);
    the achievable power-demand range and the maximum slowdown are sampled
    uniformly from those of known job types.
    """
    if t_min <= 0:
        raise ValueError(f"t_min must be positive, got {t_min}")
    if not known_power_ranges or not known_max_slowdowns:
        raise ValueError("need at least one known type to sample from")
    rng = ensure_rng(seed)
    p_min, p_max = known_power_ranges[int(rng.integers(len(known_power_ranges)))]
    slowdown = float(known_max_slowdowns[int(rng.integers(len(known_max_slowdowns)))])
    return UnknownTypeProperties(
        t_min=float(t_min), p_min=float(p_min), p_max=float(p_max), max_slowdown=slowdown
    )
