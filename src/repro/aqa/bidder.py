"""Demand-response bidding: choose average power and reserve (paper §4.4.1).

Once per bidding period (an hour in the paper) the cluster decides how much
average power ``P̄`` to request and how much reserve ``R`` to offer; until
the next bid it must track targets in ``[P̄ − R, P̄ + R]``.  AQA "searches
for queue weights and demand response bids (average power and reserve) that
reduce electricity cost under constraints for QoS and power-tracking error"
(§4.4.2).  The bidder here grid-searches candidate bids, scores each with a
caller-supplied evaluator (typically a tabular-simulator run), and keeps the
cheapest bid whose constraints hold.

The cost model follows regulation-market economics: the cluster pays for the
energy it requests and is credited for the reserve capacity it offers, so

    cost_rate = energy_price·P̄ − reserve_credit·R      [$ per hour, per W].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["Bid", "BidEvaluation", "DemandResponseBidder"]


@dataclass(frozen=True)
class Bid:
    """A demand-response commitment: track targets in P̄ ± R."""

    average_power: float
    reserve: float

    def __post_init__(self) -> None:
        if self.average_power <= 0:
            raise ValueError(f"average power must be positive, got {self.average_power}")
        if self.reserve < 0:
            raise ValueError(f"reserve must be ≥ 0, got {self.reserve}")
        if self.reserve >= self.average_power:
            raise ValueError(
                f"reserve {self.reserve} must stay below average {self.average_power}"
            )

    @property
    def floor(self) -> float:
        return self.average_power - self.reserve

    @property
    def ceiling(self) -> float:
        return self.average_power + self.reserve


@dataclass(frozen=True)
class BidEvaluation:
    """How one candidate bid fared in the evaluation simulations."""

    bid: Bid
    qos_ok: bool
    tracking_ok: bool
    qos_90th: float
    tracking_error_90th: float

    @property
    def feasible(self) -> bool:
        return self.qos_ok and self.tracking_ok


class DemandResponseBidder:
    """Grid search for the cheapest feasible (P̄, R) bid.

    Parameters
    ----------
    p_floor, p_ceiling:
        Physical cluster power range (min caps + idle .. max caps).
    energy_price, reserve_credit:
        Cost-model coefficients; with credit > price the bidder is pushed
        toward large reserves, bounded by the QoS/tracking constraints.
    n_power_steps, n_reserve_steps:
        Grid resolution.
    """

    def __init__(
        self,
        p_floor: float,
        p_ceiling: float,
        *,
        energy_price: float = 1.0,
        reserve_credit: float = 1.6,
        n_power_steps: int = 7,
        n_reserve_steps: int = 6,
    ) -> None:
        if not 0 < p_floor < p_ceiling:
            raise ValueError(f"need 0 < floor < ceiling, got {p_floor}, {p_ceiling}")
        self.p_floor = float(p_floor)
        self.p_ceiling = float(p_ceiling)
        self.energy_price = float(energy_price)
        self.reserve_credit = float(reserve_credit)
        self.n_power_steps = int(n_power_steps)
        self.n_reserve_steps = int(n_reserve_steps)

    def cost_rate(self, bid: Bid) -> float:
        """$-per-hour-per-watt-scale cost of a bid (lower is better)."""
        return self.energy_price * bid.average_power - self.reserve_credit * bid.reserve

    def candidates(self) -> list[Bid]:
        """The bid grid: averages across the feasible band, reserves below
        the distance to the nearest physical bound."""
        bids: list[Bid] = []
        averages = np.linspace(self.p_floor, self.p_ceiling, self.n_power_steps + 2)[1:-1]
        for avg in averages:
            max_reserve = min(avg - self.p_floor, self.p_ceiling - avg)
            for frac in np.linspace(0.0, 1.0, self.n_reserve_steps):
                reserve = frac * max_reserve
                if reserve >= avg:
                    continue
                bids.append(Bid(average_power=float(avg), reserve=float(reserve)))
        return bids

    def select(
        self,
        evaluate: Callable[[Bid], BidEvaluation],
        *,
        candidates: Sequence[Bid] | None = None,
    ) -> tuple[Bid, list[BidEvaluation]]:
        """Evaluate candidates and return the cheapest feasible bid.

        Raises ``RuntimeError`` when no candidate satisfies both constraints
        (the data center should not enroll in demand response at all then).
        """
        evaluations = [evaluate(bid) for bid in (candidates or self.candidates())]
        feasible = [e for e in evaluations if e.feasible]
        if not feasible:
            raise RuntimeError(
                "no feasible demand-response bid: all candidates violated "
                "QoS or power-tracking constraints"
            )
        best = min(feasible, key=lambda e: self.cost_rate(e.bid))
        return best.bid, evaluations
