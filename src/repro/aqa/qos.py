"""QoS metrics and constraints (paper §5.2).

A job's QoS degradation is ``Q = (T_sojourn − T_min)/T_min``, where sojourn
time runs from submission to completion and ``T_min`` is the job's execution
time when not power limited.  The paper constrains all job types to Q ≤ 5
with 90 % probability, and justifies the constant against a real queue trace
whose 90th-percentile wait/execution ratio exceeds 22 — we regenerate that
justification from a synthetic heavy-tailed trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.stats import percentile

__all__ = ["qos_degradation", "QoSConstraint", "generate_queue_trace"]


def qos_degradation(sojourn: float, t_min: float) -> float:
    """Q = (T_sojourn − T_min) / T_min."""
    if t_min <= 0:
        raise ValueError(f"t_min must be positive, got {t_min}")
    if sojourn < 0:
        raise ValueError(f"sojourn must be ≥ 0, got {sojourn}")
    return (sojourn - t_min) / t_min


@dataclass(frozen=True)
class QoSConstraint:
    """Probabilistic QoS bound: Q ≤ ``limit`` with probability ``probability``."""

    limit: float = 5.0
    probability: float = 0.9

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ValueError(f"limit must be ≥ 0, got {self.limit}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")

    def satisfied(self, q_samples: Sequence[float]) -> bool:
        """True when the required fraction of samples meets the limit."""
        arr = np.asarray(q_samples, dtype=float)
        if arr.size == 0:
            return True  # vacuously: no jobs means no violated jobs
        return float(np.mean(arr <= self.limit)) >= self.probability

    def percentile_value(self, q_samples: Sequence[float]) -> float:
        """The Q value at the constraint's probability (e.g. 90th percentile)."""
        return percentile(q_samples, 100.0 * self.probability)

    def margin(self, q_samples: Sequence[float]) -> float:
        """limit − percentile_value; positive when the constraint holds."""
        return self.limit - self.percentile_value(q_samples)


def generate_queue_trace(
    n_jobs: int = 5000,
    *,
    seed: int | np.random.Generator | None = 0,
    median_exec: float = 600.0,
    wait_sigma: float = 2.6,
) -> np.ndarray:
    """Synthetic month-like queue trace of (wait_time, exec_time) pairs.

    Stands in for the real-world job-queue data of [17] used to justify the
    Q = 5 constraint: execution times are lognormal around ``median_exec``
    and waits are heavy-tailed lognormal, giving a 90th-percentile
    wait/execution ratio comfortably above 22 (§5.2).  Returns an array of
    shape (n_jobs, 2).
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be ≥ 1, got {n_jobs}")
    rng = ensure_rng(seed)
    exec_times = rng.lognormal(mean=np.log(median_exec), sigma=1.2, size=n_jobs)
    # Waits correlate only weakly with job length in real queues; a long
    # right tail (σ≈2.6) produces the >22 ratio the paper reports.
    waits = rng.lognormal(mean=np.log(median_exec * 2.0), sigma=wait_sigma, size=n_jobs)
    return np.column_stack([waits, exec_times])


def wait_exec_ratio_percentile(trace: np.ndarray, q: float = 90.0) -> float:
    """Percentile of wait/exec ratio over a (n, 2) queue trace."""
    trace = np.asarray(trace, dtype=float)
    if trace.ndim != 2 or trace.shape[1] != 2:
        raise ValueError(f"expected (n, 2) trace, got {trace.shape}")
    ratios = trace[:, 0] / trace[:, 1]
    return percentile(ratios, q)
