"""Command-line entry points: ``anor <experiment> [options]``.

Each subcommand regenerates one of the paper's figures and prints the
paper-vs-measured comparison table.  Scaled-down runs (for quick checks) are
available through ``--quick``.  ``--jobs N`` fans independent runs over N
worker processes (see :mod:`repro.runner`); ``--seeds`` sweeps a figure over
several seeds, one run per seed.
"""

from __future__ import annotations

import argparse
import sys
import time


def _fig3(quick: bool, seed: int) -> str:
    from repro.experiments import fig3

    result = fig3.run_fig3(
        runs_per_cap=3 if quick else 10,
        tick=0.5 if quick else 0.25,
        seed=seed,
    )
    return fig3.format_table(result)


def _fig4(quick: bool, seed: int, csv_path: str | None = None) -> str:
    from repro.experiments import fig4

    result = fig4.run_fig4(n_budgets=15 if quick else 40)
    if csv_path:
        from repro.analysis.export import export_fig4

        export_fig4(result, csv_path)
    return fig4.format_table(result)


def _fig5(quick: bool, seed: int) -> str:
    from repro.experiments import fig5

    return fig5.format_table(fig5.run_fig5(n_budgets=12 if quick else 30))


def _fig6(quick: bool, seed: int) -> str:
    from repro.experiments import fig6

    return fig6.format_table(fig6.run_fig6(trials=1 if quick else 3, seed=seed))


def _fig7(quick: bool, seed: int) -> str:
    from repro.experiments import fig6

    return fig6.format_table(fig6.run_fig7(trials=1 if quick else 3, seed=seed))


def _fig8(quick: bool, seed: int) -> str:
    from repro.experiments import fig6

    return fig6.format_table(fig6.run_fig8(trials=2 if quick else 6, seed=seed))


def _fig9(quick: bool, seed: int, csv_path: str | None = None) -> str:
    from repro.experiments import fig9

    result = fig9.run_fig9(duration=900.0 if quick else 3600.0, seed=seed)
    if csv_path:
        from repro.analysis.export import export_power_trace

        export_power_trace(result.result.power_trace, csv_path)
    return fig9.format_table(result)


def _fig10(quick: bool, seed: int) -> str:
    from repro.experiments import fig10

    result = fig10.run_fig10(duration=1200.0 if quick else 3600.0, seed=seed)
    return fig10.format_table(result)


def _fig11(quick: bool, seed: int, csv_path: str | None = None) -> str:
    from repro.experiments import fig11

    result = fig11.run_fig11(
        trials=2 if quick else 10,
        duration=1800.0 if quick else 3600.0,
        seed=seed,
    )
    if csv_path:
        from repro.analysis.export import export_fig11

        export_fig11(result, csv_path)
    return fig11.format_table(result)


def _resilience_checked(quick: bool, seed: int) -> tuple:
    from repro.experiments import resilience, scorecard

    result = resilience.run_resilience(
        duration=600.0 if quick else 3600.0,
        warmup=120.0 if quick else 300.0,
        seed=seed,
    )
    table = resilience.format_table(result)
    card = scorecard.score_resilience(result)
    return f"{table}\n\n{card.render()}", card.all_passed


def _resilience(quick: bool, seed: int) -> str:
    return _resilience_checked(quick, seed)[0]


def _partition(quick: bool, seed: int) -> tuple:
    from repro.experiments import resilience, scorecard

    result = resilience.run_partition_drill(
        duration=600.0 if quick else 900.0,
        partition_time=200.0 if quick else 300.0,
        partition_duration=150.0 if quick else 240.0,
        seed=seed,
    )
    table = resilience.format_partition_table(result)
    card = scorecard.score_partition(result)
    return f"{table}\n\n{card.render()}", card.all_passed


def _headnode(
    quick: bool,
    seed: int,
    checkpoint_dir: str | None = None,
    checkpoint_period: float = 30.0,
) -> tuple:
    from repro.experiments import resilience, scorecard

    result = resilience.run_headnode_recovery(
        duration=600.0 if quick else 1800.0,
        crash_time=200.0 if quick else 600.0,
        down_for=45.0 if quick else 90.0,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        checkpoint_period=checkpoint_period,
    )
    table = resilience.format_headnode_table(result)
    card = scorecard.score_headnode_recovery(result)
    return f"{table}\n\n{card.render()}", card.all_passed


def _byzantine(quick: bool, seed: int) -> tuple:
    from repro.experiments import resilience, scorecard

    result = resilience.run_byzantine_drill(
        duration=600.0 if quick else 900.0,
        seed=seed,
    )
    table = resilience.format_byzantine_table(result)
    card = scorecard.score_byzantine(result)
    return f"{table}\n\n{card.render()}", card.all_passed


def _soak(seconds: float, seed: int, trace_out: str | None) -> tuple:
    from repro.experiments import resilience, scorecard

    result = resilience.run_chaos_soak(seconds=seconds, base_seed=seed)
    table = resilience.format_soak_table(result)
    card = scorecard.score_soak(result)
    if trace_out is not None:
        from pathlib import Path

        path = Path(trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "\n".join(result.violations) + "\n" if result.violations else ""
        )
        table += f"\n[violation trace written to {trace_out}]"
    return f"{table}\n\n{card.render()}", card.all_passed


def _shed(quick: bool, seed: int) -> tuple:
    # The drill is already short (fixed incident stagger over 900 simulated
    # seconds); --quick changes nothing, the flag is accepted for symmetry.
    del quick
    from repro.experiments import resilience, scorecard

    result = resilience.run_shed_drill(seed=seed)
    table = resilience.format_shed_table(result)
    card = scorecard.score_shed(result)
    return f"{table}\n\n{card.render()}", card.all_passed


def _plan_drill(quick: bool, seed: int) -> tuple:
    from repro.experiments import resilience, scorecard

    result = resilience.run_forecast_drill(
        duration=600.0 if quick else 900.0,
        warmup=120.0,
        seed=seed,
    )
    table = resilience.format_forecast_table(result)
    card = scorecard.score_forecast(result)
    return f"{table}\n\n{card.render()}", card.all_passed


def _all_tasks(quick: bool, seed: int, out_dir: str | None) -> list:
    """One :class:`~repro.runner.ExperimentTask` per figure, in name order."""
    from pathlib import Path

    from repro.runner import ExperimentTask

    out = Path(out_dir) if out_dir else None
    tasks = []
    for name, (runner, _) in sorted(_COMMANDS.items()):
        if name == "all":
            continue
        kwargs: dict = {"quick": quick, "seed": seed}
        if name in _EXPORTABLE:
            kwargs["csv_path"] = str(out / f"{name}.csv") if out is not None else None
        tasks.append(ExperimentTask(key=name, fn=runner, kwargs=kwargs))
    return tasks


def _run_all(
    quick: bool,
    seed: int,
    out_dir: str | None,
    jobs: int = 1,
    seeds: list[int] | None = None,
) -> str:
    """Run every figure, optionally archiving tables + CSVs to a directory.

    With ``jobs > 1`` the figures run concurrently; outcomes merge back in
    figure-name order, so the archived tables are identical to a serial run.
    ``seeds`` sweeps the whole figure set once per seed; all batches share
    one worker pool, so workers start once for the entire sweep.
    """
    from pathlib import Path

    from repro.runner import WorkerPool, run_tasks

    out = Path(out_dir) if out_dir else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    sweep = seeds if seeds else [seed]
    lines: list[str] = []
    failed: list[str] = []
    with WorkerPool(jobs) as pool:
        for s in sweep:
            sub = out
            if out is not None and len(sweep) > 1:
                sub = out / f"seed-{s}"
                sub.mkdir(parents=True, exist_ok=True)
            tasks = _all_tasks(quick, s, str(sub) if sub is not None else None)
            prefix = f"[seed={s}] " if len(sweep) > 1 else ""
            for outcome in run_tasks(tasks, pool=pool):
                lines.append(f"=== {prefix}{outcome.key} ({outcome.elapsed:.1f}s) ===")
                if outcome.ok:
                    lines.append(outcome.table)
                    if sub is not None:
                        (sub / f"{outcome.key}.txt").write_text(outcome.table + "\n")
                else:
                    lines.append(f"FAILED: {outcome.error}")
                    failed.append(f"{prefix}{outcome.key}")
                lines.append("")
    if out is not None:
        lines.append(f"[tables and CSVs archived under {out}]")
    if failed:
        lines.append(f"[{len(failed)} experiment(s) failed: {', '.join(failed)}]")
    return "\n".join(lines)


def _run_seed_sweep(name: str, quick: bool, seeds: list[int], jobs: int) -> str:
    """Run one figure once per seed, fanned over ``jobs`` workers."""
    from repro.runner import ExperimentTask, run_tasks

    runner, _ = _COMMANDS[name]
    tasks = [
        ExperimentTask(
            key=f"{name}[seed={s}]", fn=runner, kwargs={"quick": quick, "seed": s}
        )
        for s in seeds
    ]
    lines = []
    for outcome in run_tasks(tasks, jobs=jobs):
        lines.append(f"=== {outcome.key} ({outcome.elapsed:.1f}s) ===")
        lines.append(outcome.table if outcome.ok else f"FAILED: {outcome.error}")
        lines.append("")
    return "\n".join(lines)


_EXPORTABLE = {"fig4", "fig9", "fig11"}

_COMMANDS = {
    "fig3": (_fig3, "power-performance characterization curves + fit R²"),
    "fig4": (_fig4, "budgeter comparison across shared budgets"),
    "fig5": (_fig5, "misclassification cost (under/over × small/large)"),
    "fig6": (_fig6, "BT+SP pair under a static 840 W budget"),
    "fig7": (_fig7, "BT+BT pair, one misclassified as IS"),
    "fig8": (_fig8, "SP+SP pair, one misclassified as EP"),
    "fig9": (_fig9, "1-hour time-varying power target tracking"),
    "fig10": (_fig10, "per-type slowdown under the 1-hour schedule"),
    "fig11": (_fig11, "QoS degradation vs performance variation (tabsim)"),
    "resilience": (_resilience, "fig9 workload under the standard fault load"),
    "all": (None, "run every figure; --out archives tables and CSVs"),
}


def _add_observability_commands(sub) -> None:
    """``anor top`` and ``anor trace`` — consumers of repro.telemetry.

    Deliberately NOT in ``_COMMANDS``: they are views over a run, not
    figures, so ``anor all`` must not iterate them.
    """
    top = sub.add_parser(
        "top", help="live terminal view of the fig9 system (telemetry on)"
    )
    top.add_argument("--duration", type=float, default=600.0)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--refresh", type=float, default=10.0, help="simulated seconds per repaint"
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single final frame (default on non-tty output)",
    )
    prof = sub.add_parser(
        "profile",
        help="run one figure under cProfile and print the hottest functions",
    )
    prof.add_argument(
        "figure", choices=[n for n in _COMMANDS if n != "all"],
        help="which figure to profile",
    )
    prof.add_argument("--quick", action="store_true")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--top", type=int, default=25, help="functions to show (default 25)"
    )
    prof.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "calls"],
        default="cumulative",
        help="pstats sort key (default cumulative)",
    )
    prof.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    plan = sub.add_parser(
        "plan",
        help="predictive-planning drill: reactive vs forecast-driven "
        "receding-horizon budgeting on the fig9 target",
    )
    plan.add_argument(
        "--drill",
        action="store_true",
        help="run the forecast drill scorecard (reactive / predictive / "
        "adversarial forecaster arms)",
    )
    plan.add_argument("--quick", action="store_true", help="scaled-down run")
    plan.add_argument("--seed", type=int, default=0)
    trace = sub.add_parser(
        "trace", help="export or summarize structured JSONL traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export", help="run fig9 with telemetry and write the JSONL trace"
    )
    export.add_argument("--out", required=True, help="trace output path")
    export.add_argument("--duration", type=float, default=600.0)
    export.add_argument("--seed", type=int, default=0)
    summary = trace_sub.add_parser(
        "summary", help="validate a JSONL trace and print record counts"
    )
    summary.add_argument("path", help="trace file to read")


def _run_profile(
    name: str, quick: bool, seed: int, top: int, sort: str, out: str | None
) -> str:
    """Profile one figure run and render the top-N hot functions.

    The figure executes exactly as ``anor <figure>`` would (same seed, same
    config, event-driven core included), so the report reflects the real
    simulation hot path rather than a synthetic kernel.
    """
    import cProfile
    import io
    import pstats

    runner, _ = _COMMANDS[name]
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        runner(quick, seed)
    finally:
        profiler.disable()
    elapsed = time.perf_counter() - start
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    report = (
        f"profile: {name} (quick={quick}, seed={seed}), "
        f"wall {elapsed:.2f}s, sorted by {sort}\n{buf.getvalue()}"
    )
    if out is not None:
        from pathlib import Path

        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
    return report


def _run_trace_export(out: str, duration: float, seed: int) -> str:
    from repro.core.framework import AnorConfig
    from repro.experiments.fig9 import build_demand_response_system

    cfg = AnorConfig(seed=seed, telemetry_enabled=True, trace_path=out)
    system = build_demand_response_system(duration=duration, seed=seed, config=cfg)
    # The sink is a context manager: the trace is flushed and closed even if
    # the run raises or the CLI is torn down early — no truncated traces.
    with system.telemetry.trace_sink as sink:
        system.run(duration)
    return f"wrote {sink.records_written} trace records to {out}"


def _run_trace_summary(path: str) -> tuple[str, int]:
    import json

    from repro.telemetry.schema import summarize_trace, validate_trace

    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            records.append(json.loads(line))
    errors = validate_trace(records)
    summary = summarize_trace(records)
    lines = [
        f"records   : {summary['records']}",
        f"time range: t={summary['t_min']} .. t={summary['t_max']}",
        "spans     : "
        + (
            ", ".join(f"{k}×{v}" for k, v in sorted(summary["spans"].items()))
            or "(none)"
        ),
        "events    : "
        + (
            ", ".join(f"{k}×{v}" for k, v in sorted(summary["events"].items()))
            or "(none)"
        ),
        "incidents : "
        + (
            ", ".join(f"{k}×{v}" for k, v in sorted(summary["incidents"].items()))
            or "(none)"
        ),
    ]
    if errors:
        lines.append(f"INVALID: {len(errors)} schema error(s), first: {errors[0]}")
    else:
        lines.append("schema    : valid")
    return "\n".join(lines), (1 if errors else 0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="anor",
        description="Reproduce the figures of 'An End-to-End HPC Framework "
        "for Dynamic Power Objectives' (SC-W 2023).",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)
    _add_observability_commands(sub)
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--quick", action="store_true", help="scaled-down run")
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent runs (default: serial)",
        )
        if name in _EXPORTABLE:
            p.add_argument(
                "--csv", default=None, help="also write the plotted series as CSV"
            )
        if name == "resilience":
            p.add_argument(
                "--headnode-crash",
                action="store_true",
                help="run the head-node crash/recovery scenario instead of "
                "the standard fault load",
            )
            p.add_argument(
                "--partition",
                action="store_true",
                help="run the partition drill (cap leases + degraded "
                "autonomy) instead of the standard fault load",
            )
            p.add_argument(
                "--checkpoint-dir",
                default=None,
                help="directory for the cluster-tier checkpoint/journal "
                "(default: a fresh temp dir)",
            )
            p.add_argument(
                "--checkpoint-period",
                type=float,
                default=30.0,
                help="seconds between cluster-tier checkpoints (default 30)",
            )
            p.add_argument(
                "--byzantine",
                action="store_true",
                help="run the byzantine drill: rogue job-tier endpoints "
                "(stuck actuators, fabricated models) vs the cap-compliance "
                "auditor",
            )
            p.add_argument(
                "--soak",
                action="store_true",
                help="run a randomized chaos soak with online invariant "
                "monitors for --seconds of wall-clock time",
            )
            p.add_argument(
                "--seconds",
                type=float,
                default=60.0,
                help="wall-clock budget for --soak (default 60)",
            )
            p.add_argument(
                "--soak-trace",
                default=None,
                help="write the soak's invariant-violation trace to this file",
            )
            p.add_argument(
                "--shed",
                action="store_true",
                help="run the graceful-degradation shed drill: staggered "
                "facility incidents walk the severity ladder (brownouts to "
                "blackstart) against priority-tiered shedding",
            )
        if name == "all":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument(
                "--out", default=None, help="directory to archive tables and CSVs"
            )
            p.add_argument(
                "--seeds",
                default=None,
                help="comma-separated seed list: run the whole figure set "
                "once per seed, sharing one worker pool across the sweep",
            )
        else:
            # The byzantine drill and the soak have their own calibrated
            # default seeds; None lets the dispatcher tell "no --seed given"
            # from an explicit 0.
            p.add_argument(
                "--seed", type=int, default=None if name == "resilience" else 0
            )
            p.add_argument(
                "--seeds",
                default=None,
                help="comma-separated seed list: run the figure once per seed "
                "(fanned over --jobs workers)",
            )
    args = parser.parse_args(argv)
    if args.experiment == "top":
        from repro.telemetry.top import run_top

        return run_top(
            duration=args.duration,
            seed=args.seed,
            refresh=args.refresh,
            once=args.once,
        )
    if args.experiment == "profile":
        print(
            _run_profile(
                args.figure, args.quick, args.seed, args.top, args.sort, args.out
            )
        )
        return 0
    if args.experiment == "plan":
        start = time.perf_counter()
        table, ok = _plan_drill(args.quick, args.seed)
        print(table)
        print(f"\n[plan completed in {time.perf_counter() - start:.1f}s]")
        # Like the resilience scenarios: a failed claim fails the caller.
        return 0 if ok else 1
    if args.experiment == "trace":
        if args.trace_command == "export":
            print(_run_trace_export(args.out, args.duration, args.seed))
            return 0
        table, code = _run_trace_summary(args.path)
        print(table)
        return code
    start = time.perf_counter()
    exit_code = 0
    if args.experiment == "all":
        all_seeds = None
        if args.seeds:
            all_seeds = [int(s) for s in args.seeds.split(",") if s.strip() != ""]
            if not all_seeds:
                parser.error("--seeds must name at least one seed")
        table = _run_all(
            args.quick, args.seed, args.out, jobs=args.jobs, seeds=all_seeds
        )
    elif args.experiment == "resilience" and not args.seeds:
        scenarios = [
            flag
            for flag in ("headnode_crash", "partition", "byzantine", "soak", "shed")
            if getattr(args, flag)
        ]
        if len(scenarios) > 1:
            parser.error(
                "--headnode-crash, --partition, --byzantine, --soak and "
                "--shed are exclusive"
            )
        scenario = scenarios[0] if scenarios else None
        seed = args.seed
        if scenario == "headnode_crash":
            table, ok = _headnode(
                args.quick,
                seed if seed is not None else 0,
                args.checkpoint_dir,
                args.checkpoint_period,
            )
        elif scenario == "partition":
            table, ok = _partition(args.quick, seed if seed is not None else 0)
        elif scenario == "byzantine":
            table, ok = _byzantine(args.quick, seed if seed is not None else 3)
        elif scenario == "soak":
            table, ok = _soak(
                args.seconds, seed if seed is not None else 7, args.soak_trace
            )
        elif scenario == "shed":
            table, ok = _shed(args.quick, seed if seed is not None else 11)
        else:
            table, ok = _resilience_checked(
                args.quick, seed if seed is not None else 0
            )
        # A resilience scenario is a claim check, not just a report: a
        # failed scorecard claim must fail the invoking script/CI job.
        exit_code = 0 if ok else 1
    elif getattr(args, "seeds", None):
        seeds = [int(s) for s in args.seeds.split(",") if s.strip() != ""]
        if not seeds:
            parser.error("--seeds must name at least one seed")
        table = _run_seed_sweep(args.experiment, args.quick, seeds, args.jobs)
    elif args.experiment in _EXPORTABLE:
        runner, _ = _COMMANDS[args.experiment]
        table = runner(args.quick, args.seed, args.csv)
    else:
        runner, _ = _COMMANDS[args.experiment]
        table = runner(args.quick, args.seed)
    print(table)
    print(f"\n[{args.experiment} completed in {time.perf_counter() - start:.1f}s]")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
