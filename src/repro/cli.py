"""Command-line entry points: ``anor <experiment> [options]``.

Each subcommand regenerates one of the paper's figures and prints the
paper-vs-measured comparison table.  Scaled-down runs (for quick checks) are
available through ``--quick``.
"""

from __future__ import annotations

import argparse
import sys
import time


def _fig3(quick: bool, seed: int) -> str:
    from repro.experiments import fig3

    result = fig3.run_fig3(
        runs_per_cap=3 if quick else 10,
        tick=0.5 if quick else 0.25,
        seed=seed,
    )
    return fig3.format_table(result)


def _fig4(quick: bool, seed: int, csv_path: str | None = None) -> str:
    from repro.experiments import fig4

    result = fig4.run_fig4(n_budgets=15 if quick else 40)
    if csv_path:
        from repro.analysis.export import export_fig4

        export_fig4(result, csv_path)
    return fig4.format_table(result)


def _fig5(quick: bool, seed: int) -> str:
    from repro.experiments import fig5

    return fig5.format_table(fig5.run_fig5(n_budgets=12 if quick else 30))


def _fig6(quick: bool, seed: int) -> str:
    from repro.experiments import fig6

    return fig6.format_table(fig6.run_fig6(trials=1 if quick else 3, seed=seed))


def _fig7(quick: bool, seed: int) -> str:
    from repro.experiments import fig6

    return fig6.format_table(fig6.run_fig7(trials=1 if quick else 3, seed=seed))


def _fig8(quick: bool, seed: int) -> str:
    from repro.experiments import fig6

    return fig6.format_table(fig6.run_fig8(trials=2 if quick else 6, seed=seed))


def _fig9(quick: bool, seed: int, csv_path: str | None = None) -> str:
    from repro.experiments import fig9

    result = fig9.run_fig9(duration=900.0 if quick else 3600.0, seed=seed)
    if csv_path:
        from repro.analysis.export import export_power_trace

        export_power_trace(result.result.power_trace, csv_path)
    return fig9.format_table(result)


def _fig10(quick: bool, seed: int) -> str:
    from repro.experiments import fig10

    result = fig10.run_fig10(duration=1200.0 if quick else 3600.0, seed=seed)
    return fig10.format_table(result)


def _fig11(quick: bool, seed: int, csv_path: str | None = None) -> str:
    from repro.experiments import fig11

    result = fig11.run_fig11(
        trials=2 if quick else 10,
        duration=1800.0 if quick else 3600.0,
        seed=seed,
    )
    if csv_path:
        from repro.analysis.export import export_fig11

        export_fig11(result, csv_path)
    return fig11.format_table(result)


def _resilience(quick: bool, seed: int) -> str:
    from repro.experiments import resilience, scorecard

    result = resilience.run_resilience(
        duration=600.0 if quick else 3600.0,
        warmup=120.0 if quick else 300.0,
        seed=seed,
    )
    table = resilience.format_table(result)
    card = scorecard.score_resilience(result)
    return f"{table}\n\n{card.render()}"


def _run_all(quick: bool, seed: int, out_dir: str | None) -> str:
    """Run every figure, optionally archiving tables + CSVs to a directory."""
    from pathlib import Path

    lines = []
    out = Path(out_dir) if out_dir else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    for name, (runner, _) in sorted(_COMMANDS.items()):
        if name == "all":
            continue
        start = time.time()
        if name in ("fig4", "fig9", "fig11") and out is not None:
            table = runner(quick, seed, str(out / f"{name}.csv"))
        elif name in ("fig4", "fig9", "fig11"):
            table = runner(quick, seed, None)
        else:
            table = runner(quick, seed)
        elapsed = time.time() - start
        if out is not None:
            (out / f"{name}.txt").write_text(table + "\n")
        lines.append(f"=== {name} ({elapsed:.1f}s) ===")
        lines.append(table)
        lines.append("")
    if out is not None:
        lines.append(f"[tables and CSVs archived under {out}]")
    return "\n".join(lines)


_COMMANDS = {
    "fig3": (_fig3, "power-performance characterization curves + fit R²"),
    "fig4": (_fig4, "budgeter comparison across shared budgets"),
    "fig5": (_fig5, "misclassification cost (under/over × small/large)"),
    "fig6": (_fig6, "BT+SP pair under a static 840 W budget"),
    "fig7": (_fig7, "BT+BT pair, one misclassified as IS"),
    "fig8": (_fig8, "SP+SP pair, one misclassified as EP"),
    "fig9": (_fig9, "1-hour time-varying power target tracking"),
    "fig10": (_fig10, "per-type slowdown under the 1-hour schedule"),
    "fig11": (_fig11, "QoS degradation vs performance variation (tabsim)"),
    "resilience": (_resilience, "fig9 workload under the standard fault load"),
    "all": (None, "run every figure; --out archives tables and CSVs"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="anor",
        description="Reproduce the figures of 'An End-to-End HPC Framework "
        "for Dynamic Power Objectives' (SC-W 2023).",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)
    exportable = {"fig4", "fig9", "fig11"}
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--quick", action="store_true", help="scaled-down run")
        p.add_argument("--seed", type=int, default=0)
        if name in exportable:
            p.add_argument(
                "--csv", default=None, help="also write the plotted series as CSV"
            )
        if name == "all":
            p.add_argument(
                "--out", default=None, help="directory to archive tables and CSVs"
            )
    args = parser.parse_args(argv)
    start = time.time()
    if args.experiment == "all":
        table = _run_all(args.quick, args.seed, args.out)
    elif args.experiment in exportable:
        runner, _ = _COMMANDS[args.experiment]
        table = runner(args.quick, args.seed, args.csv)
    else:
        runner, _ = _COMMANDS[args.experiment]
        table = runner(args.quick, args.seed)
    print(table)
    print(f"\n[{args.experiment} completed in {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
