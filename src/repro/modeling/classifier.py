"""Job-type classification with controllable misclassification injection.

The cluster tier looks up a job's precharacterized model by classifying the
job into a known type (§4.4.2).  The paper's misclassification experiments
(Figs. 5–8, 10) deliberately map one type onto another's model; this module
provides that mapping as an explicit, auditable table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.modeling.default_models import DefaultModelPolicy
from repro.modeling.quadratic import QuadraticPowerModel

__all__ = ["Misclassification", "JobClassifier"]


@dataclass(frozen=True)
class Misclassification:
    """Declares that jobs of ``true_type`` are classified as ``seen_as``."""

    true_type: str
    seen_as: str


class JobClassifier:
    """Maps a job's true type to the model the cluster tier will believe.

    Parameters
    ----------
    known_models:
        Precharacterized models by type name (the budgeter's catalog).
    misclassifications:
        Type-level substitutions to inject (e.g. BT seen as IS).
    unknown_types:
        Types the cluster has *no* model for; these fall back to
        ``default_policy``.
    default_policy:
        Policy supplying a stand-in model for unknown types.
    """

    def __init__(
        self,
        known_models: Mapping[str, QuadraticPowerModel],
        *,
        misclassifications: list[Misclassification] | None = None,
        unknown_types: set[str] | frozenset[str] | None = None,
        default_policy: DefaultModelPolicy | None = None,
    ) -> None:
        self.known_models = dict(known_models)
        self.misclassifications = {
            m.true_type: m.seen_as for m in (misclassifications or [])
        }
        self.unknown_types = set(unknown_types or ())
        self.default_policy = default_policy
        for true_type, seen_as in self.misclassifications.items():
            if seen_as not in self.known_models:
                raise KeyError(
                    f"misclassification target {seen_as!r} has no known model"
                )
        overlap = self.unknown_types & set(self.misclassifications)
        if overlap:
            raise ValueError(
                f"types cannot be both unknown and misclassified: {sorted(overlap)}"
            )

    def classify(self, true_type: str) -> str:
        """The type name the cluster tier believes this job to be."""
        if true_type in self.misclassifications:
            return self.misclassifications[true_type]
        return true_type

    def is_known(self, true_type: str) -> bool:
        return (
            true_type not in self.unknown_types
            and self.classify(true_type) in self.known_models
        )

    def model_for(self, true_type: str, *, job_name: str = "") -> QuadraticPowerModel:
        """The model the cluster tier will use for a job of ``true_type``."""
        if self.is_known(true_type):
            return self.known_models[self.classify(true_type)]
        if self.default_policy is None:
            raise KeyError(
                f"job type {true_type!r} is unknown and no default policy is set"
            )
        return self.default_policy.model_for(self.known_models, job_name=job_name)
