"""Job power-performance modeling (the ANOR job tier's analytical core).

The paper models each job's time-per-epoch as a quadratic in the applied CPU
power cap, ``T = A·P² + B·P + C`` (§4.2), refit online whenever at least 10
new epochs have been observed.  Jobs with no model yet use a *default model*
chosen by policy (§6.1.2 evaluates the least- and most-sensitive choices).
"""

from repro.modeling.quadratic import FitResult, QuadraticPowerModel
from repro.modeling.online import EpochHistory, EpochSample, OnlineModeler
from repro.modeling.default_models import (
    DefaultModelPolicy,
    LeastSensitivePolicy,
    MostSensitivePolicy,
    NamedTypePolicy,
    RandomKnownTypePolicy,
)
from repro.modeling.classifier import JobClassifier, Misclassification

__all__ = [
    "FitResult",
    "QuadraticPowerModel",
    "EpochHistory",
    "EpochSample",
    "OnlineModeler",
    "DefaultModelPolicy",
    "LeastSensitivePolicy",
    "MostSensitivePolicy",
    "NamedTypePolicy",
    "RandomKnownTypePolicy",
    "JobClassifier",
    "Misclassification",
]
