"""Quadratic power-performance model: ``T = A·P² + B·P + C`` (paper §4.2).

``T`` is seconds per epoch and ``P`` is the per-node CPU power cap in watts.
The model is valid on a cap interval [p_min, p_max]; evaluation clamps into
that range, matching the platform's enforceable cap window (70 W per package
floor, TDP ceiling — §6.1.1).

The inverse map :meth:`QuadraticPowerModel.power_for_time` is what the
performance-aware (even-slowdown) budgeter uses: given a target time per
epoch it returns the smallest power cap achieving it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.maths import clamp

__all__ = ["QuadraticPowerModel", "FitResult"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a least-squares fit: the model plus goodness-of-fit."""

    model: "QuadraticPowerModel"
    r2: float
    n_samples: int


@dataclass(frozen=True)
class QuadraticPowerModel:
    """Seconds-per-epoch as a quadratic function of the power cap.

    Attributes
    ----------
    a, b, c:
        Quadratic coefficients of ``T(P) = a·P² + b·P + c``.
    p_min, p_max:
        Enforceable cap range in watts; evaluation clamps P into it.
    """

    a: float
    b: float
    c: float
    p_min: float
    p_max: float

    def __post_init__(self) -> None:
        if not (self.p_min < self.p_max):
            raise ValueError(f"need p_min < p_max, got [{self.p_min}, {self.p_max}]")

    # ------------------------------------------------------------------ eval

    def time_per_epoch(self, p_cap: float | np.ndarray) -> float | np.ndarray:
        """Predicted seconds per epoch at cap ``p_cap`` (clamped into range)."""
        if isinstance(p_cap, (int, float)):
            # Scalar fast path: this sits inside the budgeters' bisection
            # loop, where np.clip's array machinery costs ~10x the algebra.
            p = self.p_min if p_cap < self.p_min else (
                self.p_max if p_cap > self.p_max else p_cap
            )
            return float(self.a * p * p + self.b * p + self.c)
        p = np.clip(p_cap, self.p_min, self.p_max)
        result = self.a * p * p + self.b * p + self.c
        if np.isscalar(p_cap):
            return float(result)
        return result

    def time_at(self, p_cap: float) -> float:
        """Scalar alias of :meth:`time_per_epoch`."""
        return self.time_per_epoch(float(p_cap))

    @property
    def t_min(self) -> float:
        """Fastest achievable time per epoch (at the maximum cap)."""
        # The dataclass is frozen, so derived quantities can be memoized
        # safely; object.__setattr__ bypasses the frozen guard.
        t = self.__dict__.get("_t_min")
        if t is None:
            t = self.time_at(self.p_max)
            object.__setattr__(self, "_t_min", t)
        return t

    @property
    def t_max(self) -> float:
        """Slowest time per epoch within the cap range (at the minimum cap)."""
        t = self.__dict__.get("_t_max")
        if t is None:
            t = self.time_at(self.p_min)
            object.__setattr__(self, "_t_max", t)
        return t

    def slowdown_at(self, p_cap: float) -> float:
        """Fractional slowdown vs. the uncapped (max-cap) time; ≥ 0."""
        return self.time_at(p_cap) / self.t_min - 1.0

    @property
    def sensitivity(self) -> float:
        """Relative time at the minimum cap, ``T(p_min)/T(p_max)`` (≥ 1)."""
        return self.t_max / self.t_min

    # --------------------------------------------------------------- inverse

    def power_for_time(self, t_target: float) -> float:
        """Smallest cap whose predicted time ≤ ``t_target`` (clamped to range).

        This is the ``P_j(·)`` function of §4.4.3.  Targets faster than the
        model's fastest time return ``p_max``; targets slower than its
        slowest return ``p_min`` (the cap cannot slow the job further).
        """
        if t_target <= self.t_min:
            return self.p_max
        if t_target >= self.t_max:
            return self.p_min
        a, b, p_min, p_max = self.a, self.b, self.p_min, self.p_max
        if abs(a) < 1e-18:
            if abs(b) < 1e-18:
                return p_max  # constant model: any cap achieves it
            p = (t_target - self.c) / b
            return clamp(p, p_min, p_max)
        # Solve a·P² + b·P + (c − t) = 0; take the root inside the cap range.
        disc = b * b - 4.0 * a * (self.c - t_target)
        if disc < 0:
            # Shouldn't happen for monotone models within [t_min, t_max];
            # fall back to the vertex.
            return clamp(-b / (2.0 * a), p_min, p_max)
        sqrt_disc = math.sqrt(disc)
        r1 = (-b - sqrt_disc) / (2.0 * a)
        r2 = (-b + sqrt_disc) / (2.0 * a)
        in1 = p_min - 1e-9 <= r1 <= p_max + 1e-9
        in2 = p_min - 1e-9 <= r2 <= p_max + 1e-9
        if in1 and in2:
            # Both roots valid: keep the one whose predicted time is closer
            # to the target (ties resolve to r1, matching min() semantics).
            if abs(self.time_at(r1) - t_target) <= abs(self.time_at(r2) - t_target):
                return clamp(r1, p_min, p_max)
            return clamp(r2, p_min, p_max)
        if in1:
            return clamp(r1, p_min, p_max)
        if in2:
            return clamp(r2, p_min, p_max)
        # Both roots outside: choose the nearer bound.
        return p_min if t_target > self.t_max else p_max

    def power_for_slowdown(self, s: float) -> float:
        """Cap achieving slowdown factor ``s`` (s=1 → no slowdown)."""
        if s < 1.0:
            raise ValueError(f"slowdown factor must be ≥ 1, got {s}")
        return self.power_for_time(s * self.t_min)

    def is_monotone_decreasing(self, samples: int = 64) -> bool:
        """Check T(P) decreases over the cap range (sanity for fitted models)."""
        key = f"_monotone_{samples}"
        cached = self.__dict__.get(key)
        if cached is None:
            ps = np.linspace(self.p_min, self.p_max, samples)
            ts = self.time_per_epoch(ps)
            cached = bool(np.all(np.diff(ts) <= 1e-12))
            object.__setattr__(self, key, cached)
        return cached

    # ------------------------------------------------------------ construct

    @classmethod
    def fit(
        cls,
        p_caps: np.ndarray,
        times: np.ndarray,
        p_min: float,
        p_max: float,
    ) -> FitResult:
        """Least-squares fit of the quadratic to (cap, time/epoch) samples.

        With fewer than 3 distinct cap values the quadratic is rank-deficient;
        we degrade gracefully to a linear (2 caps) or constant (1 cap) model
        by zeroing the missing coefficients.
        """
        p = np.asarray(p_caps, dtype=float)
        t = np.asarray(times, dtype=float)
        if p.shape != t.shape or p.ndim != 1:
            raise ValueError(f"need matching 1-D arrays, got {p.shape} and {t.shape}")
        if p.size == 0:
            raise ValueError("cannot fit a model to zero samples")
        distinct = np.unique(np.round(p, 6)).size
        degree = min(2, distinct - 1)
        coeffs = np.polyfit(p, t, deg=degree) if degree > 0 else np.array([t.mean()])
        padded = np.zeros(3)
        padded[3 - coeffs.size:] = coeffs
        model = cls(a=float(padded[0]), b=float(padded[1]), c=float(padded[2]),
                    p_min=p_min, p_max=p_max)
        pred = model.a * p * p + model.b * p + model.c
        ss_res = float(np.sum((t - pred) ** 2))
        ss_tot = float(np.sum((t - t.mean()) ** 2))
        r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
        return FitResult(model=model, r2=r2, n_samples=int(p.size))

    @classmethod
    def from_anchors(
        cls,
        t_at_max: float,
        sensitivity: float,
        p_min: float,
        p_max: float,
        *,
        end_slope_fraction: float = 0.1,
    ) -> "QuadraticPowerModel":
        """Build a monotone quadratic from two anchor points.

        Constraints: ``T(p_max) = t_at_max``, ``T(p_min) = sensitivity·t_at_max``,
        and a small negative slope at ``p_max`` equal to ``end_slope_fraction``
        of the mean slope — making the curve flatten near TDP, as measured
        power-performance curves do (paper Fig. 3).
        """
        if t_at_max <= 0:
            raise ValueError(f"t_at_max must be positive, got {t_at_max}")
        if sensitivity < 1.0:
            raise ValueError(f"sensitivity must be ≥ 1, got {sensitivity}")
        if not 0.0 <= end_slope_fraction < 1.0:
            raise ValueError(f"end_slope_fraction must be in [0, 1), got {end_slope_fraction}")
        span = p_max - p_min
        if span <= 0:
            raise ValueError(f"need p_min < p_max, got [{p_min}, {p_max}]")
        rise = (sensitivity - 1.0) * t_at_max
        mean_slope = rise / span  # magnitude of the average downward slope
        delta = end_slope_fraction * mean_slope  # |T'(p_max)|
        # Solve the 3 linear constraints for a, b, c.
        a = (rise - delta * span) / (span * span)
        b = -delta - 2.0 * a * p_max
        c = t_at_max - a * p_max * p_max - b * p_max
        return cls(a=a, b=b, c=c, p_min=p_min, p_max=p_max)

    def with_range(self, p_min: float, p_max: float) -> "QuadraticPowerModel":
        """Same curve restricted/extended to a different cap range."""
        return QuadraticPowerModel(self.a, self.b, self.c, p_min, p_max)

    def scaled(self, factor: float) -> "QuadraticPowerModel":
        """Model with all times multiplied by ``factor`` (same cap range)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return QuadraticPowerModel(self.a * factor, self.b * factor,
                                   self.c * factor, self.p_min, self.p_max)
