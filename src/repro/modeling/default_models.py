"""Default-model policies for jobs whose type has not been characterized.

§6.1.2 of the paper evaluates two extreme assumptions for unknown job types:
treat them as the *least* power-sensitive known type (underprediction — the
unknown job bears the slowdown) or as the *most* sensitive (overprediction —
co-scheduled sensitive jobs bear it).  §4.4.2 additionally randomly samples
properties from known types while training AQA queue weights.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from repro.modeling.quadratic import QuadraticPowerModel
from repro.util.rng import ensure_rng

__all__ = [
    "DefaultModelPolicy",
    "LeastSensitivePolicy",
    "MostSensitivePolicy",
    "NamedTypePolicy",
    "RandomKnownTypePolicy",
]


class DefaultModelPolicy(ABC):
    """Chooses a stand-in power-performance model for an unknown job."""

    @abstractmethod
    def model_for(
        self,
        known_models: Mapping[str, QuadraticPowerModel],
        *,
        job_name: str = "",
    ) -> QuadraticPowerModel:
        """Return the default model given the catalog of known-type models."""

    @staticmethod
    def _require_known(known_models: Mapping[str, QuadraticPowerModel]) -> None:
        if not known_models:
            raise ValueError("no known job-type models to choose a default from")


class LeastSensitivePolicy(DefaultModelPolicy):
    """Assume the unknown job matches the least power-sensitive known type.

    This *underpredicts* a medium-sensitivity job's sensitivity, so the
    budgeter starves the unknown job under tight budgets (Fig. 5, left).
    """

    def model_for(self, known_models, *, job_name: str = "") -> QuadraticPowerModel:
        self._require_known(known_models)
        name = min(known_models, key=lambda k: known_models[k].sensitivity)
        return known_models[name]


class MostSensitivePolicy(DefaultModelPolicy):
    """Assume the unknown job matches the most power-sensitive known type.

    This *overpredicts* sensitivity, so the budgeter over-feeds the unknown
    job and starves genuinely sensitive co-scheduled jobs (Fig. 5, right).
    """

    def model_for(self, known_models, *, job_name: str = "") -> QuadraticPowerModel:
        self._require_known(known_models)
        name = max(known_models, key=lambda k: known_models[k].sensitivity)
        return known_models[name]


class NamedTypePolicy(DefaultModelPolicy):
    """Always use a specific known type's model (deliberate misclassification).

    The hardware experiments misclassify BT as IS (Figs. 7, 10) and SP as EP
    (Fig. 8); this policy expresses those scenarios directly.
    """

    def __init__(self, type_name: str) -> None:
        self.type_name = type_name

    def model_for(self, known_models, *, job_name: str = "") -> QuadraticPowerModel:
        self._require_known(known_models)
        try:
            return known_models[self.type_name]
        except KeyError:
            raise KeyError(
                f"default type {self.type_name!r} not in known models "
                f"{sorted(known_models)}"
            ) from None


class RandomKnownTypePolicy(DefaultModelPolicy):
    """Sample the default uniformly from known types (AQA training, §4.4.2).

    Deterministic per job name for a fixed seed, so repeated queries for the
    same job agree.
    """

    def __init__(self, seed: int | np.random.Generator | None = 0) -> None:
        self._rng = ensure_rng(seed)
        self._assignments: dict[str, str] = {}

    def model_for(self, known_models, *, job_name: str = "") -> QuadraticPowerModel:
        self._require_known(known_models)
        if job_name not in self._assignments:
            names = sorted(known_models)
            self._assignments[job_name] = names[int(self._rng.integers(len(names)))]
        return known_models[self._assignments[job_name]]
