"""Automatic epoch detection from periodic resource usage (paper §8).

The paper's instrumentation requires a manual ``geopm_prof_epoch()`` call in
each application's main loop; §8 suggests "automatic epoch detection (e.g.,
by identifying periodic usage of system resources or software interfaces)"
as future work.  :func:`detect_epoch_period` estimates the dominant period
of a sampled signal (e.g. node power) via its autocorrelation, and
:class:`AutoEpochCounter` turns a live sample stream into a synthetic epoch
count a power modeler can consume when no instrumentation exists.
"""

from __future__ import annotations

import numpy as np

__all__ = ["detect_epoch_period", "AutoEpochCounter"]


def detect_epoch_period(
    signal: np.ndarray,
    dt: float,
    *,
    min_period: float | None = None,
    max_period: float | None = None,
    min_strength: float = 0.2,
) -> float | None:
    """Estimate the dominant period of ``signal`` (seconds), or None.

    Uses the first prominent peak of the unbiased autocorrelation after the
    zero lag.  ``min_strength`` is the minimum normalised autocorrelation at
    the peak for the detection to count — aperiodic signals return None
    rather than a spurious period.
    """
    x = np.asarray(signal, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {x.shape}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if x.size < 9:
        return None
    # First-difference the signal: level shifts (job setup ending, cap
    # changes) become single impulses instead of dominating the
    # autocorrelation, while a period-P oscillation keeps its period.  The
    # short moving average afterwards tames the high-frequency noise that
    # differencing amplifies (spurious 2-sample "periods").
    x = np.diff(x)
    x = np.convolve(x, np.ones(3) / 3.0, mode="valid")
    n = x.size
    x = x - x.mean()
    var = float(np.dot(x, x))
    if var <= 0:
        return None
    # Full autocorrelation, normalised to r[0] == 1.
    corr = np.correlate(x, x, mode="full")[n - 1 :] / var
    lag_lo = max(1, int(round((min_period or 2 * dt) / dt)))
    lag_hi = min(n - 2, int(round((max_period or (n * dt / 2)) / dt)))
    if lag_hi <= lag_lo:
        return None
    # Take the FIRST prominent local maximum, not the global one: for a
    # periodic signal the autocorrelation peaks at every multiple of the
    # fundamental, and noise can push a harmonic above the fundamental.
    for lag in range(lag_lo, lag_hi + 1):
        if corr[lag] < min_strength:
            continue
        if corr[lag] >= corr[lag - 1] and corr[lag] >= corr[min(lag + 1, n - 1)]:
            return lag * dt
    return None


class AutoEpochCounter:
    """Streams resource samples into a synthetic epoch count.

    Accumulates (time, value) samples; once at least ``min_cycles`` of a
    detected period have been observed, the epoch count is elapsed time over
    the period.  Re-estimates the period as more data arrives, so gradual
    frequency changes are followed.
    """

    def __init__(
        self,
        dt: float,
        *,
        min_cycles: int = 4,
        max_window: int = 512,
        min_strength: float = 0.2,
    ) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if min_cycles < 2:
            raise ValueError(f"min_cycles must be ≥ 2, got {min_cycles}")
        self.dt = float(dt)
        self.min_cycles = int(min_cycles)
        self.max_window = int(max_window)
        self.min_strength = float(min_strength)
        self._samples: list[float] = []
        self._elapsed = 0.0
        self.period: float | None = None
        # Stability lock: noise can produce one-off spurious detections, so
        # a period only counts once the same estimate (±20 %) persists for
        # several consecutive pushes.
        self._pending_period: float | None = None
        self._stable_pushes = 0
        self._required_stable = 8

    def push(self, value: float) -> int:
        """Add one sample (dt seconds after the previous); returns the count."""
        self._samples.append(float(value))
        if len(self._samples) > self.max_window:
            self._samples.pop(0)
        self._elapsed += self.dt
        period = detect_epoch_period(
            np.asarray(self._samples), self.dt, min_strength=self.min_strength
        )
        if period is None:
            self._pending_period = None
            self._stable_pushes = 0
        elif (
            self._pending_period is not None
            and abs(period - self._pending_period) <= 0.2 * self._pending_period
        ):
            self._stable_pushes += 1
        else:
            self._pending_period = period
            self._stable_pushes = 1
        if (
            period is not None
            and self._stable_pushes >= self._required_stable
            and self._elapsed >= self.min_cycles * period
        ):
            self.period = period
        return self.epoch_count

    @property
    def epoch_count(self) -> int:
        """Synthetic cumulative epoch count (0 until a period is locked)."""
        if self.period is None:
            return 0
        return int(self._elapsed / self.period)
