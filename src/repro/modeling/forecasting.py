"""Job-type forecasting from submission metadata (paper §2).

The paper cites queue-metadata power prediction (Patel et al. [17], Saillant
et al. [20]) and positions ANOR as *supplementing* forecasting "by
responding to unknown or changing applications while they execute".  This
module supplies the forecasting half of that story: a Naive-Bayes-style
classifier over categorical submission metadata (user, account, executable
name, node count, requested walltime bucket) that predicts the job type —
i.e., produces the ``claimed_type`` the cluster tier's classifier consumes.
Misprediction here is exactly the misclassification ANOR's feedback loop
then repairs (Figs. 6–8, 10).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.util.rng import ensure_rng

__all__ = [
    "SubmissionMetadata",
    "MetadataModel",
    "NaiveBayesTypeForecaster",
    "synthesize_submissions",
]

#: Metadata fields the forecaster conditions on.
FIELDS = ("user", "account", "executable", "nodes_bucket", "walltime_bucket")


@dataclass(frozen=True)
class SubmissionMetadata:
    """What the batch system knows about a job before it runs."""

    user: str
    account: str
    executable: str
    nodes: int
    walltime_request: float  # seconds

    def features(self) -> dict[str, str]:
        """Categorical features; numeric fields are bucketed."""
        return {
            "user": self.user,
            "account": self.account,
            "executable": self.executable,
            "nodes_bucket": _bucket_nodes(self.nodes),
            "walltime_bucket": _bucket_walltime(self.walltime_request),
        }


def _bucket_nodes(nodes: int) -> str:
    if nodes <= 1:
        return "1"
    if nodes <= 2:
        return "2"
    if nodes <= 8:
        return "3-8"
    return "9+"


def _bucket_walltime(seconds: float) -> str:
    if seconds <= 60.0:
        return "<1m"
    if seconds <= 600.0:
        return "1-10m"
    if seconds <= 3600.0:
        return "10-60m"
    return ">1h"


@dataclass
class MetadataModel:
    """Per-type categorical likelihoods with Laplace smoothing."""

    type_counts: Counter = field(default_factory=Counter)
    # field -> type -> value -> count
    value_counts: dict = field(
        default_factory=lambda: {f: defaultdict(Counter) for f in FIELDS}
    )
    vocab: dict = field(default_factory=lambda: {f: set() for f in FIELDS})

    @property
    def total(self) -> int:
        return sum(self.type_counts.values())

    def log_posteriors(self, features: Mapping[str, str]) -> dict[str, float]:
        """Unnormalised log P(type | features) per known type."""
        if self.total == 0:
            raise ValueError("model has no training data")
        out: dict[str, float] = {}
        for type_name, n_type in self.type_counts.items():
            logp = math.log(n_type / self.total)
            for field_name in FIELDS:
                value = features[field_name]
                counts = self.value_counts[field_name][type_name]
                vocab_size = max(len(self.vocab[field_name]), 1)
                # Laplace smoothing keeps unseen values finite.
                likelihood = (counts[value] + 1.0) / (n_type + vocab_size)
                logp += math.log(likelihood)
            out[type_name] = logp
        return out


class NaiveBayesTypeForecaster:
    """Predicts a job's type from its submission metadata."""

    def __init__(self) -> None:
        self.model = MetadataModel()

    # -------------------------------------------------------------- training

    def fit(
        self, submissions: Iterable[tuple[SubmissionMetadata, str]]
    ) -> "NaiveBayesTypeForecaster":
        """Train on (metadata, true type) pairs; returns self."""
        for metadata, type_name in submissions:
            self.observe(metadata, type_name)
        return self

    def observe(self, metadata: SubmissionMetadata, type_name: str) -> None:
        """Online update with one labelled submission (e.g. after a job
        completes and its type is confirmed by the job tier)."""
        self.model.type_counts[type_name] += 1
        features = metadata.features()
        for field_name in FIELDS:
            value = features[field_name]
            self.model.value_counts[field_name][type_name][value] += 1
            self.model.vocab[field_name].add(value)

    # ------------------------------------------------------------ prediction

    def predict(self, metadata: SubmissionMetadata) -> str:
        """Most likely type."""
        posteriors = self.model.log_posteriors(metadata.features())
        return max(posteriors, key=posteriors.get)

    def predict_proba(self, metadata: SubmissionMetadata) -> dict[str, float]:
        """Normalised type probabilities."""
        logp = self.model.log_posteriors(metadata.features())
        peak = max(logp.values())
        weights = {k: math.exp(v - peak) for k, v in logp.items()}
        total = sum(weights.values())
        return {k: w / total for k, w in weights.items()}

    def confidence(self, metadata: SubmissionMetadata) -> float:
        """Probability of the predicted type — a gate for 'treat as unknown'."""
        return max(self.predict_proba(metadata).values())

    def accuracy(
        self, submissions: Sequence[tuple[SubmissionMetadata, str]]
    ) -> float:
        if not submissions:
            raise ValueError("no submissions to score")
        hits = sum(
            1 for metadata, truth in submissions if self.predict(metadata) == truth
        )
        return hits / len(submissions)


def synthesize_submissions(
    type_names: Sequence[str],
    count: int,
    *,
    seed: int | np.random.Generator | None = 0,
    users_per_type: int = 3,
    crossover: float = 0.1,
    walltime_by_type: Mapping[str, float] | None = None,
    nodes_by_type: Mapping[str, int] | None = None,
) -> list[tuple[SubmissionMetadata, str]]:
    """Synthetic labelled submission stream.

    Each type has a small pool of habitual users and a characteristic
    executable name; ``crossover`` is the probability a submission uses
    another type's user/account (what makes forecasting imperfect, as in
    real queue traces).
    """
    if not type_names:
        raise ValueError("need at least one type")
    if count < 1:
        raise ValueError(f"count must be ≥ 1, got {count}")
    if not 0.0 <= crossover <= 1.0:
        raise ValueError(f"crossover must be in [0, 1], got {crossover}")
    rng = ensure_rng(seed)
    out: list[tuple[SubmissionMetadata, str]] = []
    n_types = len(type_names)
    for _ in range(count):
        type_idx = int(rng.integers(n_types))
        type_name = type_names[type_idx]
        persona_idx = type_idx
        if rng.random() < crossover:
            persona_idx = int(rng.integers(n_types))
        persona = type_names[persona_idx]
        user = f"user-{persona}-{int(rng.integers(users_per_type))}"
        executable = (
            f"{type_name}.x" if rng.random() > crossover else f"run-{persona}.sh"
        )
        walltime = (
            walltime_by_type.get(type_name, 600.0)
            if walltime_by_type is not None
            else 600.0
        ) * float(rng.uniform(0.8, 1.5))
        nodes = (
            nodes_by_type.get(type_name, 2) if nodes_by_type is not None else 2
        )
        out.append(
            (
                SubmissionMetadata(
                    user=user,
                    account=f"acct-{persona}",
                    executable=executable,
                    nodes=nodes,
                    walltime_request=walltime,
                ),
                type_name,
            )
        )
    return out
