"""Online power modeler: learns T(P) from epoch feedback (paper §4.2).

The modeler receives periodic status updates containing the job's cumulative
epoch count, and tracks the average power cap applied since the previous
epoch progress.  Each completed batch of epochs becomes one training sample
(average cap, seconds per epoch).  The model is refit whenever at least
``retrain_threshold`` (10 in the paper) new epochs have been recorded.  Jobs
that report no epochs, or that have not yet accumulated enough, use a
*default model* supplied by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modeling.quadratic import FitResult, QuadraticPowerModel

__all__ = ["EpochSample", "EpochHistory", "OnlineModeler"]


@dataclass(frozen=True)
class EpochSample:
    """One training sample: ``epochs`` epochs completed at ``p_cap`` average cap."""

    p_cap: float
    seconds_per_epoch: float
    epochs: int
    timestamp: float


@dataclass
class EpochHistory:
    """Append-only record of epoch-timing samples with array export."""

    samples: list[EpochSample] = field(default_factory=list)

    def append(self, sample: EpochSample) -> None:
        if sample.seconds_per_epoch <= 0:
            raise ValueError(f"non-positive time per epoch: {sample.seconds_per_epoch}")
        if sample.epochs < 1:
            raise ValueError(f"sample must cover ≥ 1 epoch, got {sample.epochs}")
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def total_epochs(self) -> int:
        return sum(s.epochs for s in self.samples)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(caps, times-per-epoch, weights) as parallel arrays."""
        caps = np.array([s.p_cap for s in self.samples], dtype=float)
        times = np.array([s.seconds_per_epoch for s in self.samples], dtype=float)
        weights = np.array([s.epochs for s in self.samples], dtype=float)
        return caps, times, weights


class OnlineModeler:
    """Builds and refreshes a job's quadratic power-performance model online.

    Parameters
    ----------
    p_min, p_max:
        Enforceable per-node cap range (W).
    default_model:
        Model used until a fit exists (§4.2: "jobs that report no epochs or
        that have yet to build a model use a default model").
    retrain_threshold:
        Minimum count of *new* epochs before refitting (paper: 10).
    min_fit_epochs:
        Epochs required before the first fit replaces the default.
    min_sample_epochs:
        Epochs batched into one training sample.  Status updates arrive at
        ~1 Hz while epochs take ~1–2 s, so a per-update sample would be
        quantised to whole control periods; batching several epochs averages
        the quantisation down (§7.2: "we initially needed to gather many
        samples from the job runtime to consistently map power caps to job
        performance metrics").
    """

    def __init__(
        self,
        p_min: float,
        p_max: float,
        default_model: QuadraticPowerModel,
        *,
        retrain_threshold: int = 10,
        min_fit_epochs: int = 10,
        min_sample_epochs: int = 6,
        detect_drift: bool = False,
        drift_window: int = 4,
        drift_threshold: float = 0.10,
    ) -> None:
        if retrain_threshold < 1:
            raise ValueError(f"retrain_threshold must be ≥ 1, got {retrain_threshold}")
        if min_sample_epochs < 1:
            raise ValueError(f"min_sample_epochs must be ≥ 1, got {min_sample_epochs}")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.default_model = default_model
        self.retrain_threshold = int(retrain_threshold)
        self.min_fit_epochs = int(min_fit_epochs)
        self.min_sample_epochs = int(min_sample_epochs)
        self.history = EpochHistory()
        self._fit: FitResult | None = None
        # True while the current fit came from seed_fit() rather than this
        # modeler's own history; cleared by the first genuine refit or drift
        # reset, so consumers can tell a carried-over model from a learned one.
        self.seeded = False
        self._epochs_since_fit = 0
        self._pending_epochs = 0
        self._saw_first_epoch = False
        # Phase-change (drift) detection, §8: when the last `drift_window`
        # samples all miss the current fit by more than `drift_threshold`
        # relative error with a consistent sign, the job has entered a new
        # power-sensitivity phase — discard the stale history and relearn.
        self.detect_drift = bool(detect_drift)
        self.drift_window = int(drift_window)
        self.drift_threshold = float(drift_threshold)
        self.drift_resets = 0
        self._recent_residuals: list[float] = []
        self._live_residuals: list[float] = []
        self._fit_cap_range: tuple[float, float] = (self.p_min, self.p_max)
        # Drift is scored against a slowly-refreshed snapshot of the fit,
        # not the live model: the regular refits (every ~10 epochs) absorb
        # new-phase samples faster than a residual window can fill, which
        # would mask exactly the shift we are trying to detect.
        self._drift_model: QuadraticPowerModel | None = None
        self._drift_model_age = 0
        # Integration state for the cap applied between epoch updates.
        self._last_time: float | None = None
        self._last_epochs = 0
        self._cap_time_integral = 0.0  # ∫ cap dt since last epoch progress
        self._span_seconds = 0.0
        self._current_cap: float | None = None

    # -------------------------------------------------------------- feeding

    def observe(self, timestamp: float, epoch_count: int, power_cap: float) -> bool:
        """Record a status update from the agent.

        ``epoch_count`` is cumulative; ``power_cap`` is the cap in force *now*
        (assumed held since the previous observation — the paper timestamps
        samples for exactly this asynchronous mapping, §7.2).  Returns True
        when the observation triggered a model refit.
        """
        if epoch_count < self._last_epochs:
            raise ValueError(
                f"epoch count went backwards: {self._last_epochs} -> {epoch_count}"
            )
        if self._last_time is None:
            # First observation: establishes the time origin only.
            self._last_time = float(timestamp)
            self._last_epochs = int(epoch_count)
            self._current_cap = float(power_cap)
            return False
        if not self._saw_first_epoch:
            # Time before the first epoch ever completes is job setup, not
            # compute: folding it into a sample would attribute batch-system
            # startup to whatever cap happened to be programmed (§7.2's
            # setup/teardown confounder).  Re-anchor and start clean.
            self._last_time = float(timestamp)
            self._current_cap = float(power_cap)
            self._cap_time_integral = 0.0
            self._span_seconds = 0.0
            if epoch_count > self._last_epochs:
                self._last_epochs = int(epoch_count)
                self._saw_first_epoch = True
            return False
        dt = float(timestamp) - self._last_time
        if dt < 0:
            raise ValueError(f"time went backwards: {self._last_time} -> {timestamp}")
        held_cap = self._current_cap if self._current_cap is not None else float(power_cap)
        self._cap_time_integral += held_cap * dt
        self._span_seconds += dt
        self._last_time = float(timestamp)
        self._current_cap = float(power_cap)

        new_epochs = int(epoch_count) - self._last_epochs
        self._last_epochs = int(epoch_count)
        self._pending_epochs += new_epochs
        if new_epochs == 0 or self._pending_epochs < self.min_sample_epochs:
            return False
        if self._span_seconds <= 0:
            # Epochs arrived with no elapsed time — drop the degenerate sample.
            self._cap_time_integral = 0.0
            self._pending_epochs = 0
            return False
        avg_cap = self._cap_time_integral / self._span_seconds
        batched = self._pending_epochs
        self._pending_epochs = 0
        sample = EpochSample(
            p_cap=avg_cap,
            seconds_per_epoch=self._span_seconds / batched,
            epochs=batched,
            timestamp=float(timestamp),
        )
        if self._is_outlier(sample):
            # A sample vastly slower than recent history is a measurement
            # artifact (e.g. a long observation gap folded into one span),
            # not a performance signal — drop it rather than poison the fit.
            self._cap_time_integral = 0.0
            self._span_seconds = 0.0
            return False
        if self.detect_drift and self._check_drift(sample):
            return True
        self.history.append(sample)
        self._cap_time_integral = 0.0
        self._span_seconds = 0.0
        self._epochs_since_fit += batched
        if (
            self._epochs_since_fit >= self.retrain_threshold
            and self.history.total_epochs >= self.min_fit_epochs
        ):
            self._refit()
            return True
        return False

    def _is_outlier(self, sample: EpochSample, *, factor: float = 6.0) -> bool:
        """True when the sample is impossibly slow vs. recent history."""
        recent = self.history.samples[-10:]
        if len(recent) < 3:
            return False
        med = float(np.median([s.seconds_per_epoch for s in recent]))
        return sample.seconds_per_epoch > factor * med

    def _check_drift(self, sample: EpochSample) -> bool:
        """Detect a phase change; on drift, reset and start relearning."""
        if self._fit is None:
            return False
        # Only score samples at caps the model was actually trained on:
        # extrapolation error after a cap change is not a phase change.
        lo, hi = self._fit_cap_range
        margin = 0.05 * (self.p_max - self.p_min)
        if not (lo - margin <= sample.p_cap <= hi + margin):
            return False
        if self._drift_model is None:
            self._drift_model = self._fit.model
            self._drift_model_age = 0
        predicted = self._drift_model.time_at(sample.p_cap)
        live_predicted = self._fit.model.time_at(sample.p_cap)
        if predicted <= 0 or live_predicted <= 0:
            return False
        residual = (sample.seconds_per_epoch - predicted) / predicted
        live_residual = (sample.seconds_per_epoch - live_predicted) / live_predicted
        self._recent_residuals.append(residual)
        self._live_residuals.append(live_residual)
        self._drift_model_age += 1
        if len(self._recent_residuals) > self.drift_window:
            self._recent_residuals.pop(0)
            self._live_residuals.pop(0)
        # Trigger when the snapshot consistently misses (same sign, window
        # mean beyond the threshold — averaging beats per-sample timing
        # quantisation) AND the live fit is still off too (at half
        # threshold): the live fit absorbing the new phase slowly must not
        # mask the drift, but a live fit that has already converged means
        # the snapshot is merely stale.
        consistent = len(self._recent_residuals) >= self.drift_window and (
            (
                all(r > 0 for r in self._recent_residuals)
                or all(r < 0 for r in self._recent_residuals)
            )
            and abs(float(np.mean(self._recent_residuals))) > self.drift_threshold
            and abs(float(np.mean(self._live_residuals)))
            > 0.5 * self.drift_threshold
        )
        if not consistent:
            # Refresh the reference occasionally so slow, legitimate model
            # evolution (better fits from more data) is not flagged later.
            if (
                self._drift_model_age >= 3 * self.drift_window
                and abs(residual) <= self.drift_threshold
            ):
                self._drift_model = self._fit.model
                self._drift_model_age = 0
            return False
        # New phase: throw away the stale model and its training data.
        self.history = EpochHistory()
        self._fit = None
        self.seeded = False
        self._epochs_since_fit = 0
        self._recent_residuals.clear()
        self._live_residuals.clear()
        self._cap_time_integral = 0.0
        self._span_seconds = 0.0
        self._drift_model = None
        self._drift_model_age = 0
        self.drift_resets += 1
        return True

    def seed_fit(
        self,
        model: QuadraticPowerModel,
        *,
        r2: float | None = None,
        cap_range: tuple[float, float] | None = None,
    ) -> None:
        """Install a previously validated fit (warm restart, §4.2 continuity).

        A restarted endpoint whose predecessor had already identified the
        job's T(P) curve should not re-fit from zero: the cluster tier hands
        back the last model it accepted, and the modeler resumes from it.
        The seeded fit behaves exactly like a learned one — it is shared
        upward, it suppresses exploration dither — until the modeler's own
        history produces a refit (or drift detection fires), at which point
        the live data wins.
        """
        self._fit = FitResult(
            model=model,
            r2=1.0 if r2 is None else float(r2),
            n_samples=0,
        )
        lo, hi = cap_range if cap_range is not None else (model.p_min, model.p_max)
        self._fit_cap_range = (float(lo), float(hi))
        self.seeded = True

    def set_cap(self, timestamp: float, power_cap: float) -> None:
        """Note a cap change between status updates (keeps the average honest)."""
        if self._last_time is not None:
            dt = float(timestamp) - self._last_time
            if dt < 0:
                raise ValueError(f"time went backwards: {self._last_time} -> {timestamp}")
            held = self._current_cap if self._current_cap is not None else float(power_cap)
            self._cap_time_integral += held * dt
            self._span_seconds += dt
            self._last_time = float(timestamp)
        else:
            self._last_time = float(timestamp)
        self._current_cap = float(power_cap)

    # -------------------------------------------------------------- fitting

    def _refit(self) -> None:
        caps, times, weights = self.history.arrays()
        sqrt_w = np.sqrt(weights)
        # Model order is limited by how much of the cap range the samples
        # cover: a quadratic extrapolated from a narrow operating window is
        # wild, so we only allow degree 2 with wide coverage, degree 1 with
        # two meaningfully different caps (2 W buckets), else a constant.
        distinct = np.unique(np.round(caps / 2.0)).size
        span = self.p_max - self.p_min
        coverage = (caps.max() - caps.min()) / span if span > 0 else 0.0
        degree = min(2 if coverage >= 0.3 else 1, distinct - 1)
        if degree > 0:
            coeffs = np.polyfit(caps, times, deg=degree, w=sqrt_w)
        else:
            coeffs = np.array([float(np.average(times, weights=weights))])
        padded = np.zeros(3)
        padded[3 - coeffs.size:] = coeffs
        model = QuadraticPowerModel(
            a=float(padded[0]), b=float(padded[1]), c=float(padded[2]),
            p_min=self.p_min, p_max=self.p_max,
        )
        pred = model.a * caps * caps + model.b * caps + model.c
        ss_res = float(np.sum(weights * (times - pred) ** 2))
        t_bar = float(np.average(times, weights=weights))
        ss_tot = float(np.sum(weights * (times - t_bar) ** 2))
        r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
        self._fit = FitResult(model=model, r2=r2, n_samples=len(self.history))
        self.seeded = False
        self._fit_cap_range = (float(caps.min()), float(caps.max()))
        self._epochs_since_fit = 0

    # ------------------------------------------------------------- querying

    @property
    def has_fit(self) -> bool:
        return self._fit is not None

    @property
    def model(self) -> QuadraticPowerModel:
        """The current best model: fitted if available, else the default."""
        return self._fit.model if self._fit is not None else self.default_model

    @property
    def fit_r2(self) -> float | None:
        return self._fit.r2 if self._fit is not None else None

    @property
    def epochs_observed(self) -> int:
        return self.history.total_epochs

    @property
    def cap_coverage(self) -> float:
        """Spread of observed caps as a fraction of the enforceable range.

        Feedback consumers gate on this: a model trained at a single
        operating point cannot say anything about power sensitivity.
        """
        if len(self.history) < 2:
            return 0.0
        caps, _, _ = self.history.arrays()
        span = self.p_max - self.p_min
        return float(caps.max() - caps.min()) / span if span > 0 else 0.0
