"""Durable cluster-tier state: crash-consistent checkpoint/journal + recovery.

The paper's cluster tier is one head-node process owning the job queue, the
budgeter's accounting, and every job's fitted T(P) model — a single point of
failure.  This package makes that state survive the process:

* :mod:`repro.durable.checkpoint` — atomic, versioned, checksummed snapshot
  files (write-temp + fsync + rename; refuse anything untrustworthy).
* :mod:`repro.durable.journal` — a write-ahead JSON-lines journal of
  state-changing events between checkpoints, each record checksummed and
  sequence-numbered; replay tolerates a torn tail.
* :mod:`repro.durable.store` — :class:`DurableStore`, the checkpoint+journal
  pair with the crash-consistency protocol between them.
* :mod:`repro.durable.state` — what gets captured, and how a journal tail
  folds into a baseline snapshot.
* :mod:`repro.durable.recovery` — :class:`RecoveredJob`, the per-job state
  handed to a restarted :class:`~repro.core.cluster_manager.ClusterPowerManager`
  for its bounded recovery mode (conservative reservations until each job
  re-HELLOs, orphan detection after the reconnect window).
"""

from repro.durable.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.durable.journal import Journal, JournalRecord, JournalReplay
from repro.durable.recovery import RecoveredJob, recovered_jobs_from_state
from repro.durable.state import apply_journal, capture_state, empty_state
from repro.durable.store import DurableStore

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "read_checkpoint",
    "write_checkpoint",
    "Journal",
    "JournalRecord",
    "JournalReplay",
    "DurableStore",
    "RecoveredJob",
    "recovered_jobs_from_state",
    "apply_journal",
    "capture_state",
    "empty_state",
]
