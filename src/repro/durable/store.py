"""The durable store: one directory holding a checkpoint and its journal.

Crash-consistency protocol (see DESIGN.md §4d):

1. state-changing events append to ``journal.jsonl`` as they happen;
2. every checkpoint cadence, the journal is fsynced, then the full state is
   written to ``checkpoint.json`` via write-temp + fsync + atomic rename,
   embedding the last journal ``seq`` the snapshot covers;
3. recovery loads the checkpoint (refusing unknown schema versions and
   failed checksums — :class:`CheckpointError` means *cold start*, never
   guesswork) and replays only journal records past the embedded watermark.

A crash at any instant therefore loses at most the events of the tick in
progress; a crash between the checkpoint rename and subsequent appends is
harmless because the watermark makes replay skip already-covered records.
"""

from __future__ import annotations

from pathlib import Path

from repro.durable.checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from repro.durable.journal import Journal, JournalReplay

__all__ = ["DurableStore"]


class DurableStore:
    """Checkpoint + write-ahead journal under one directory."""

    CHECKPOINT_NAME = "checkpoint.json"
    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, directory: str | Path) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.checkpoint_path = self.dir / self.CHECKPOINT_NAME
        self.journal = Journal(self.dir / self.JOURNAL_NAME)
        self.checkpoints_written = 0

    def save_checkpoint(self, payload: dict) -> None:
        """Durably persist ``payload``, watermarked at the current journal seq.

        After the checkpoint lands, the journal prefix it covers is dead
        weight — rotate it out so the journal stays proportional to one
        checkpoint period, not the cluster's lifetime.
        """
        payload = dict(payload)
        payload["journal_seq"] = self.journal.seq
        self.journal.sync()
        write_checkpoint(self.checkpoint_path, payload)
        self.checkpoints_written += 1
        self.journal.rotate(self.journal.seq)

    def load(self) -> tuple[dict | None, JournalReplay]:
        """Read back ``(checkpoint payload or None, journal tail past it)``.

        Raises :class:`CheckpointError` when a checkpoint exists but cannot
        be trusted — the caller must fall back to a cold start (the journal
        tail cannot be safely interpreted without knowing what the lost
        snapshot covered).
        """
        payload = None
        if self.checkpoint_path.exists():
            payload = read_checkpoint(self.checkpoint_path)
        min_seq = int(payload.get("journal_seq", 0)) if payload is not None else 0
        return payload, self.journal.replay(min_seq=min_seq)

    def close(self) -> None:
        self.journal.close()
