"""Crash-consistent checkpoint files: atomic, versioned, checksummed.

A checkpoint is one JSON document written with the classic crash-safe
discipline: serialise to a temporary file in the same directory, flush and
fsync it, then :func:`os.replace` it over the live file — so a reader at any
instant sees either the old complete checkpoint or the new complete one,
never a torn write.  The on-disk format is two lines::

    {"schema": 1, "crc": <crc32 of payload line>, "length": <byte length>}
    {...payload...}

The header is parsed first; ``length`` catches truncation (a crash mid-write
of a non-atomic filesystem, or a copy that lost its tail) and ``crc`` catches
corruption.  Loading anything unexpected raises :class:`CheckpointError` with
a reason a recovery path can log — callers fall back to a cold start, they
never guess at partial state.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "write_checkpoint",
    "read_checkpoint",
    "fsync_dir",
]

#: Version of the checkpoint payload layout.  Bump on any incompatible change
#: to what :mod:`repro.durable.state` captures; loaders refuse other versions
#: rather than misinterpret fields (forward-compatibility guard).
SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file could not be trusted (version/corruption/truncation)."""


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes the rename atomic but only durable once the parent
    directory's own metadata reaches disk — without this, a power cut after
    the rename can roll the directory back and the checkpoint vanishes.
    Platforms that cannot open directories (Windows) silently skip.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_checkpoint(path: str | Path, payload: dict, *, schema: int = SCHEMA_VERSION) -> None:
    """Atomically persist ``payload`` (a JSON-serialisable dict) to ``path``."""
    path = Path(path)
    body = _canonical(payload)
    header = json.dumps(
        {"schema": int(schema), "crc": zlib.crc32(body), "length": len(body)},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(header + b"\n" + body + b"\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def read_checkpoint(path: str | Path, *, schema: int = SCHEMA_VERSION) -> dict:
    """Load and verify a checkpoint; raises :class:`CheckpointError` on doubt."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable ({exc})") from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path}: truncated (no header line)")
    try:
        header = json.loads(raw[:newline])
    except ValueError as exc:
        raise CheckpointError(f"{path}: corrupt header ({exc})") from exc
    if not isinstance(header, dict) or not {"schema", "crc", "length"} <= set(header):
        raise CheckpointError(f"{path}: malformed header {header!r}")
    if header["schema"] != schema:
        raise CheckpointError(
            f"{path}: unknown schema version {header['schema']} "
            f"(this build reads version {schema})"
        )
    body = raw[newline + 1 :].rstrip(b"\n")
    if len(body) != header["length"]:
        raise CheckpointError(
            f"{path}: truncated payload ({len(body)} of {header['length']} bytes)"
        )
    if zlib.crc32(body) != header["crc"]:
        raise CheckpointError(f"{path}: checksum mismatch")
    try:
        return json.loads(body)
    except ValueError as exc:  # pragma: no cover - crc makes this unreachable
        raise CheckpointError(f"{path}: corrupt payload ({exc})") from exc
