"""Write-ahead journal of cluster-tier state changes between checkpoints.

The checkpoint captures a consistent snapshot every cadence period; the
journal records every state-changing event in between — job admissions and
evictions, accepted online models, each round's cap decision, target-feed
changes — so recovery replays ``checkpoint + journal tail`` and loses at most
the events of the tick the head node died in.

On-disk format is JSON lines, each individually checksummed::

    {"crc": <crc32 of the rec field's canonical JSON>, "rec": {"seq": n, "t": ..., "type": ..., "data": {...}}}

``seq`` increases monotonically for the life of the store and never resets:
a checkpoint embeds the last journalled ``seq`` it covers, and replay skips
records at or below that watermark.  That makes the checkpoint/journal pair
crash-consistent without needing atomicity across two files — a crash after
the checkpoint rename but before any further appends simply leaves a fully
covered journal prefix.

Replay is tolerant of exactly the damage a crash can cause: a truncated or
corrupt record ends the replay there (the tail is untrusted), reported via
``dropped_tail`` so the recovery path can record the incident.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.durable.checkpoint import fsync_dir

__all__ = ["JournalRecord", "JournalReplay", "Journal"]

#: Journal record vocabulary (see DESIGN.md §4d).
RECORD_TYPES = (
    "job-admit",      # queue intake, launch, requeue, or hello
    "job-evict",      # goodbye, dead-job timeout, or recovery orphan
    "model-accept",   # manager validated an online model for a job
    "cap-decision",   # one budgeting round's caps + correction + target
    "target-change",  # observed cluster power target changed value
)


def _canonical(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class JournalRecord:
    """One journalled state change."""

    seq: int
    time: float
    type: str
    data: dict


@dataclass
class JournalReplay:
    """Result of reading a journal back."""

    records: list[JournalRecord]
    dropped_tail: int  # lines discarded at the first corrupt/truncated record


class Journal:
    """Append-only, checksummed, crash-tolerant event log."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.seq = self._scan_last_seq()
        self._fh = None

    def _scan_last_seq(self) -> int:
        if not self.path.exists():
            return 0
        replay = self.replay(min_seq=0)
        return replay.records[-1].seq if replay.records else 0

    def append(self, rtype: str, time: float, data: dict) -> int:
        """Durably append one record; returns its sequence number."""
        if rtype not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {rtype!r}")
        self.seq += 1
        rec = {"seq": self.seq, "t": float(time), "type": rtype, "data": data}
        body = _canonical(rec)
        line = _canonical({"crc": zlib.crc32(body), "rec": rec})
        if self._fh is None:
            self._fh = open(self.path, "ab")
        self._fh.write(line + b"\n")
        self._fh.flush()
        return self.seq

    def sync(self) -> None:
        """fsync the journal (called alongside checkpoint writes)."""
        if self._fh is not None:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def rotate(self, min_seq: int) -> int:
        """Atomically drop records a checkpoint already covers (seq ≤ min_seq).

        Rewrites the journal with only the surviving tail using the same
        crash-safe discipline as the checkpoint itself: write-temp + fsync +
        atomic rename + parent-directory fsync.  A crash before the rename
        leaves the old journal (its covered prefix is harmless — replay skips
        it via the watermark); a crash after leaves the compacted one.
        Sequence numbers never reset.  Returns the number of records dropped.
        """
        full = self.replay(min_seq=0)
        survivors = [r for r in full.records if r.seq > min_seq]
        dropped = len(full.records) - len(survivors)
        if dropped == 0 and full.dropped_tail == 0:
            return 0
        self.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fh:
            for rec in survivors:
                body = {"seq": rec.seq, "t": rec.time, "type": rec.type,
                        "data": rec.data}
                fh.write(
                    _canonical({"crc": zlib.crc32(_canonical(body)), "rec": body})
                    + b"\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        fsync_dir(self.path.parent)
        return dropped

    def replay(self, *, min_seq: int = 0) -> JournalReplay:
        """Read back every trustworthy record with ``seq > min_seq``.

        Stops at the first unparseable, checksum-failing, or out-of-order
        line: everything after it is untrusted (the file is append-only, so
        damage means a torn final write or external corruption).
        """
        records: list[JournalRecord] = []
        dropped = 0
        if not self.path.exists():
            return JournalReplay(records=records, dropped_tail=0)
        with open(self.path, "rb") as fh:
            lines = fh.read().split(b"\n")
        last_seq = 0
        for i, line in enumerate(lines):
            if not line:
                continue
            try:
                wrapper = json.loads(line)
                rec = wrapper["rec"]
                ok = (
                    wrapper["crc"] == zlib.crc32(_canonical(rec))
                    and rec["type"] in RECORD_TYPES
                    and int(rec["seq"]) > last_seq
                )
            except (ValueError, KeyError, TypeError):
                ok = False
            if not ok:
                dropped = sum(1 for rest in lines[i:] if rest)
                break
            last_seq = int(rec["seq"])
            if last_seq > min_seq:
                records.append(
                    JournalRecord(
                        seq=last_seq,
                        time=float(rec["t"]),
                        type=str(rec["type"]),
                        data=dict(rec["data"]),
                    )
                )
        return JournalReplay(records=records, dropped_tail=dropped)
