"""Capture, journal-replay, and baseline construction for cluster-tier state.

The checkpoint payload is a plain JSON dict covering exactly the state the
paper's head-node process owns (§4.1, §4.4): the scheduler queue and
running-set, per-job budget accounting (last sent caps, send counts), each
job's validated online model coefficients and classifier label (claimed
type), the target-feed hold-last-good state, and the manager/checkpoint
:class:`~repro.util.clock.PeriodicGate` phases.  Compute-node-side state
(running physics, endpoint modelers, node-local watchdogs) is deliberately
absent — it survives a head-node crash in the real deployment and in the
emulation alike.

:func:`apply_journal` folds a journal tail into a checkpointed (or empty)
baseline, so recovery sees the cluster as of the last durable write, not the
last checkpoint cadence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.durable.journal import JournalRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.framework import AnorSystem

__all__ = ["capture_state", "empty_state", "apply_journal"]


def _job_entry(record) -> dict:
    """JSON form of one manager :class:`JobRecord`."""
    model = record.online_model
    return {
        "claimed_type": record.claimed_type,
        "nodes": record.nodes,
        "believed_p_max": record.believed_p_max,
        "online": None if model is None else [model.a, model.b, model.c],
        "online_r2": record.online_r2,
        "last_cap": record.last_cap,
        "caps_sent": record.caps_sent,
    }


def capture_state(system: "AnorSystem", now: float) -> dict:
    """Snapshot everything the head node must not lose."""
    mgr = system.manager
    jobs_state = {
        job_id: _job_entry(rec) for job_id, rec in sorted(mgr.jobs.items())
    }
    # Jobs restored from a previous crash that have not re-HELLOed yet are
    # still liabilities the budgeter reserves power for; a second crash must
    # not forget them.
    for job_id, rec in mgr.recovered_items():
        jobs_state.setdefault(job_id, rec.to_state())
    return {
        "now": float(now),
        "pending_index": len(system.schedule.requests) - len(system._pending),
        "queue": [system._spec_dict(q) for q in system._queue],
        "running": {jid: dict(spec) for jid, spec in sorted(system._running_view.items())},
        "attempts": dict(system._attempts),
        "requeued": list(system.requeued),
        "manager": {
            "correction": mgr._correction,
            "jobs": jobs_state,
            "counters": {
                "evictions": mgr.evictions,
                "rejected_statuses": mgr.rejected_statuses,
                "rejected_models": mgr.rejected_models,
                "meter_faults": mgr.meter_faults,
            },
        },
        "target_hold": mgr.target_source.state_dict(),
        "gates": {
            "manager": list(system._manager_gate.phase),
            "checkpoint": list(system._checkpoint_gate.phase)
            if system._checkpoint_gate is not None
            else [None, 0],
        },
    }


def empty_state() -> dict:
    """The baseline before any event: a just-booted head node with no history.

    Journal replay onto this baseline reconstructs a run that crashed before
    its first checkpoint cadence fired.
    """
    return {
        "now": 0.0,
        "pending_index": 0,
        "queue": [],
        "running": {},
        "attempts": {},
        "requeued": [],
        "manager": {
            "correction": 0.0,
            "jobs": {},
            "counters": {
                "evictions": 0,
                "rejected_statuses": 0,
                "rejected_models": 0,
                "meter_faults": 0,
            },
        },
        "target_hold": {"last_good": None, "last_good_time": 0.0, "degraded_reads": 0},
        "gates": {"manager": [None, 0], "checkpoint": [None, 0]},
    }


def apply_journal(state: dict, records: Iterable[JournalRecord]) -> dict:
    """Fold journalled state changes into ``state`` (mutates and returns it).

    Application is idempotent with respect to re-delivered evictions and
    tolerant of records about jobs the baseline no longer tracks — exactly
    the overlaps a checkpoint-then-crash interleaving can produce.
    """
    jobs = state["manager"]["jobs"]
    queue: list[dict] = state["queue"]
    running: dict[str, dict] = state["running"]
    for rec in records:
        d = rec.data
        state["now"] = max(state["now"], rec.time)
        if rec.type == "job-admit":
            kind = d.get("kind")
            if kind in ("queue", "manual", "requeue"):
                queue.append(dict(d["spec"]))
                if kind == "queue":
                    state["pending_index"] += 1
                elif kind == "requeue":
                    # The job was running when its node died; it is queued
                    # again, not running.
                    job_id = d["spec"]["job_id"]
                    running.pop(job_id, None)
                    state["attempts"][job_id] = int(d.get("attempt", 1))
                    state["requeued"].append(job_id)
            elif kind == "launch":
                job_id = d["spec"]["job_id"]
                queue[:] = [s for s in queue if s["job_id"] != job_id]
                running[job_id] = dict(d["spec"])
                state["attempts"].setdefault(job_id, int(d.get("attempt", 1)))
            elif kind == "hello":
                entry = jobs.get(d["job_id"])
                if entry is None:
                    jobs[d["job_id"]] = {
                        "claimed_type": d["claimed_type"],
                        "nodes": int(d["nodes"]),
                        "believed_p_max": float(d["believed_p_max"]),
                        "online": None,
                        "online_r2": None,
                        "last_cap": None,
                        "caps_sent": 0,
                    }
                else:
                    # Reconnect: identity fields refresh, learned state stays.
                    entry["claimed_type"] = d["claimed_type"]
                    entry["nodes"] = int(d["nodes"])
                    entry["believed_p_max"] = float(d["believed_p_max"])
        elif rec.type == "job-evict":
            kind = d.get("kind")
            # goodbye/timeout come from the manager and clear its record;
            # complete/killed come from the scheduler side and clear the
            # running-view (the manager's record goes separately, via a
            # goodbye or a later heartbeat timeout); orphan clears both.
            if kind in ("goodbye", "timeout", "orphan"):
                jobs.pop(d["job_id"], None)
            if kind in ("complete", "killed", "orphan"):
                running.pop(d["job_id"], None)
        elif rec.type == "model-accept":
            entry = jobs.get(d["job_id"])
            if entry is not None:
                entry["online"] = [float(d["a"]), float(d["b"]), float(d["c"])]
                entry["online_r2"] = d.get("r2")
        elif rec.type == "cap-decision":
            for job_id, cap in d.get("caps", {}).items():
                entry = jobs.get(job_id)
                if entry is not None:
                    entry["last_cap"] = float(cap)
                    entry["caps_sent"] = int(entry.get("caps_sent", 0)) + 1
            state["manager"]["correction"] = float(d.get("correction", 0.0))
            if "hold" in d:
                state["target_hold"] = dict(d["hold"])
        elif rec.type == "target-change":
            if "hold" in d:
                state["target_hold"] = dict(d["hold"])
    return state
