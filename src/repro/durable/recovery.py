"""Recovered cluster-tier job state, parsed out of a checkpoint/journal.

:class:`RecoveredJob` is the bridge between the persistence layer (plain
JSON dicts) and the live :class:`~repro.core.cluster_manager.ClusterPowerManager`:
everything the manager knew about a connected job that is worth carrying
across a head-node restart.  Until the job re-HELLOs over a fresh link, its
``RecoveredJob`` drives conservative budgeting (reserve ``nodes × last_cap``
— the job may still be drawing it); once it reconnects, the validated online
model and budget accounting merge into the fresh :class:`JobRecord` so the
cluster tier resumes warm instead of relearning every curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.modeling.quadratic import QuadraticPowerModel

__all__ = ["RecoveredJob", "recovered_jobs_from_state"]


@dataclass
class RecoveredJob:
    """Per-job cluster-tier state restored from the durable store."""

    job_id: str
    claimed_type: str
    nodes: int
    believed_p_max: float
    online_model: QuadraticPowerModel | None = None
    online_r2: float | None = None
    last_cap: float | None = None
    caps_sent: int = 0

    def to_state(self) -> dict:
        """JSON-serialisable form (inverse of :func:`recovered_jobs_from_state`)."""
        return {
            "claimed_type": self.claimed_type,
            "nodes": self.nodes,
            "believed_p_max": self.believed_p_max,
            "online": (
                None
                if self.online_model is None
                else [self.online_model.a, self.online_model.b, self.online_model.c]
            ),
            "online_r2": self.online_r2,
            "last_cap": self.last_cap,
            "caps_sent": self.caps_sent,
        }


def recovered_jobs_from_state(
    jobs_state: dict, *, p_node_min: float
) -> dict[str, RecoveredJob]:
    """Rebuild :class:`RecoveredJob` records from a checkpointed manager state."""
    out: dict[str, RecoveredJob] = {}
    for job_id, entry in jobs_state.items():
        believed_p_max = float(entry["believed_p_max"])
        online = entry.get("online")
        model = None
        if online is not None:
            a, b, c = (float(v) for v in online)
            model = QuadraticPowerModel(
                a=a, b=b, c=c, p_min=float(p_node_min), p_max=believed_p_max
            )
        r2 = entry.get("online_r2")
        last_cap = entry.get("last_cap")
        out[job_id] = RecoveredJob(
            job_id=job_id,
            claimed_type=str(entry["claimed_type"]),
            nodes=int(entry["nodes"]),
            believed_p_max=believed_p_max,
            online_model=model,
            online_r2=None if r2 is None else float(r2),
            last_cap=None if last_cap is None else float(last_cap),
            caps_sent=int(entry.get("caps_sent", 0)),
        )
    return out
