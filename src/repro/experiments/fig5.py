"""Fig. 5: cost of misclassifying an unknown job's power sensitivity (§6.1.2).

A medium-sensitivity job (FT) runs alongside a low-sensitivity job (IS) and
a high-sensitivity job (EP).  The budgeter does not know FT's curve and
assumes it matches either the least-sensitive known type (IS —
*underprediction*, left subplots) or the most sensitive (EP —
*overprediction*, right subplots).  Upper subplots make the unknown job
smaller than the known jobs (2 vs. 4 nodes); lower subplots make it larger
(8 vs. 1).  Three budgeters per subplot: ideal (true models), even power
caps (performance-agnostic), and the mischaracterized even-slowdown.

Paper takeaways the series must show: underprediction slows the unknown job
itself; overprediction slows the sensitive co-scheduled job; both effects
amplify with the relative size of the misclassified job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.slowdown import JobScenario, sweep_budgets
from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.workloads.nas import NAS_TYPES, P_NODE_MIN

__all__ = ["Fig5Case", "Fig5Result", "run_fig5", "format_table"]


@dataclass(frozen=True)
class Fig5Case:
    """One subplot: direction of misprediction × unknown-job size."""

    direction: str  # "under" or "over"
    size: str  # "small" or "large"

    @property
    def key(self) -> str:
        return f"{self.direction}-{self.size}"


CASES = (
    Fig5Case("under", "small"),
    Fig5Case("over", "small"),
    Fig5Case("under", "large"),
    Fig5Case("over", "large"),
)


@dataclass
class Fig5Result:
    budgets: dict[str, np.ndarray]  # case key -> budget grid
    # case key -> budgeter name -> job id -> slowdowns
    slowdowns: dict[str, dict[str, dict[str, np.ndarray]]]


def _scenarios(case: Fig5Case) -> list[JobScenario]:
    is_t, ft_t, ep_t = NAS_TYPES["is"], NAS_TYPES["ft"], NAS_TYPES["ep"]
    if case.size == "small":
        known_nodes, unknown_nodes = 4, 2
    else:
        known_nodes, unknown_nodes = 1, 8
    believed_type = is_t if case.direction == "under" else ep_t
    known = [
        JobScenario.known("ep", known_nodes, ep_t.truth, P_NODE_MIN, ep_t.p_demand),
        JobScenario.known("is", known_nodes, is_t.truth, P_NODE_MIN, is_t.p_demand),
    ]
    unknown = JobScenario(
        job_id="ft(unknown)",
        nodes=unknown_nodes,
        true_model=ft_t.truth,
        believed_model=believed_type.truth,
        p_min=P_NODE_MIN,
        # The budgeter also inherits the believed type's power ceiling: a
        # misclassified job's power range is mispredicted too.
        p_max=believed_type.p_demand,
    )
    return known + [unknown]


def _ideal_scenarios(case: Fig5Case) -> list[JobScenario]:
    """Same mix with the unknown job correctly characterized."""
    out = []
    for s in _scenarios(case):
        if s.job_id.startswith("ft"):
            ft_t = NAS_TYPES["ft"]
            out.append(
                JobScenario.known(s.job_id, s.nodes, ft_t.truth, P_NODE_MIN, ft_t.p_demand)
            )
        else:
            out.append(s)
    return out


def run_fig5(*, n_budgets: int = 30) -> Fig5Result:
    budgets_by_case: dict[str, np.ndarray] = {}
    slowdowns: dict[str, dict[str, dict[str, np.ndarray]]] = {}
    for case in CASES:
        mis = _scenarios(case)
        ideal = _ideal_scenarios(case)
        floor = sum(s.p_min * s.nodes for s in ideal)
        ceiling = sum(NAS_TYPES[s.job_id.split("(")[0]].p_demand * s.nodes for s in ideal)
        budgets = np.linspace(floor, ceiling, n_budgets)
        budgets_by_case[case.key] = budgets
        slowdowns[case.key] = {
            "ideal": sweep_budgets(ideal, EvenSlowdownBudgeter(), budgets),
            "even-power": sweep_budgets(ideal, EvenPowerBudgeter(), budgets),
            "mischaracterized": sweep_budgets(mis, EvenSlowdownBudgeter(), budgets),
        }
    return Fig5Result(budgets=budgets_by_case, slowdowns=slowdowns)


def worst_excess_slowdown(result: Fig5Result, case_key: str, job_id: str) -> float:
    """Maximum slowdown excess of the mischaracterized budgeter over ideal
    for one job across the budget sweep — the headline cost of the error."""
    mis = result.slowdowns[case_key]["mischaracterized"][job_id]
    ideal = result.slowdowns[case_key]["ideal"][job_id]
    return float(np.max(mis - ideal))


def format_table(result: Fig5Result) -> str:
    lines = [
        f"{'case':<14}{'job':<14}{'max excess slowdown vs ideal':>30}",
    ]
    for case in CASES:
        for job_id in ("ft(unknown)", "ep", "is"):
            excess = worst_excess_slowdown(result, case.key, job_id)
            lines.append(f"{case.key:<14}{job_id:<14}{100 * excess:>29.1f}%")
    return "\n".join(lines)
