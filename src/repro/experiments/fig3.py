"""Fig. 3 + §5.1: power-performance characterization of the NPB job types.

"Execution time of each job type under varied power caps, relative to the
execution time at a 280 W CPU power cap per node.  Error bars show standard
deviation over 10 runs."  The same runs provide the precharacterized models:
"Most job types have training R² scores of at least 0.97.  The exceptions
are IS (0.92), MG (0.94), and SP (0.84)."

Characterization runs fix every node's cap directly (no control plane) and
measure the compute-phase runtime the emulator produces, exactly how a
cluster operator would profile job types offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.geopm.signals import ControlNames
from repro.hwsim.cluster import EmulatedCluster
from repro.modeling.quadratic import QuadraticPowerModel
from repro.util.rng import ensure_rng
from repro.workloads.nas import NAS_TYPES, JobType, P_NODE_MAX, P_NODE_MIN

__all__ = [
    "CharacterizationResult",
    "measure_run",
    "characterize_job_types",
    "run_fig3",
    "format_table",
    "PAPER_R2",
]

#: R² scores the paper reports for its precharacterized fits (§5.1).
PAPER_R2: dict[str, float] = {
    "bt": 0.97, "cg": 0.97, "ep": 0.97, "ft": 0.97, "lu": 0.97,
    "is": 0.92, "mg": 0.94, "sp": 0.84,
}


def measure_run(
    job_type: JobType,
    p_cap: float,
    *,
    seed: int | np.random.Generator | None = None,
    tick: float = 0.25,
    max_time: float = 7200.0,
) -> float:
    """One characterization run: compute-phase runtime at a fixed node cap."""
    cluster = EmulatedCluster(job_type.nodes, seed=seed)
    cluster.clock.tick = tick
    job = cluster.start_job("char", job_type)
    for node in job.nodes:
        node.pio.write_control(ControlNames.CPU_POWER_LIMIT_CONTROL, p_cap)
    while cluster.running and cluster.clock.now < max_time:
        cluster.clock.advance(tick)
        cluster.advance(tick)
    if cluster.running:
        raise RuntimeError(
            f"{job_type.name} did not finish at cap {p_cap} within {max_time}s"
        )
    return cluster.completed[0].runtime


@dataclass
class CharacterizationResult:
    """Everything Fig. 3 plots plus the fitted models used downstream."""

    caps: np.ndarray
    # type name -> (n_caps, n_runs) runtimes
    runtimes: dict[str, np.ndarray]
    models: dict[str, QuadraticPowerModel]
    r2: dict[str, float]

    def relative_times(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(mean, std) of runtime relative to the max-cap mean, per cap."""
        runs = self.runtimes[name]
        ref = runs[-1].mean()  # caps are ascending; last is the 280 W column
        rel = runs / ref
        return rel.mean(axis=1), rel.std(axis=1)


def characterize_job_types(
    job_types: Mapping[str, JobType] | None = None,
    *,
    caps: Sequence[float] | None = None,
    runs_per_cap: int = 10,
    seed: int = 0,
    tick: float = 0.25,
) -> CharacterizationResult:
    """Profile each type over a cap sweep and fit its quadratic model."""
    types = dict(job_types) if job_types is not None else dict(NAS_TYPES)
    cap_arr = np.asarray(
        caps if caps is not None else np.arange(P_NODE_MIN, P_NODE_MAX + 1e-9, 20.0),
        dtype=float,
    )
    if cap_arr.size < 3:
        raise ValueError("need at least 3 caps to fit a quadratic")
    if np.any(np.diff(cap_arr) <= 0):
        raise ValueError("caps must be strictly increasing")
    rng = ensure_rng(seed)
    runtimes: dict[str, np.ndarray] = {}
    models: dict[str, QuadraticPowerModel] = {}
    r2: dict[str, float] = {}
    for name, jt in sorted(types.items()):
        grid = np.empty((cap_arr.size, runs_per_cap))
        for i, cap in enumerate(cap_arr):
            for r in range(runs_per_cap):
                grid[i, r] = measure_run(jt, float(cap), seed=rng, tick=tick)
        runtimes[name] = grid
        samples_p = np.repeat(cap_arr, runs_per_cap)
        samples_t = (grid / jt.epochs).ravel()
        fit = QuadraticPowerModel.fit(samples_p, samples_t, P_NODE_MIN, P_NODE_MAX)
        models[name] = fit.model
        r2[name] = fit.r2
    return CharacterizationResult(caps=cap_arr, runtimes=runtimes, models=models, r2=r2)


def run_fig3(
    *,
    runs_per_cap: int = 10,
    caps: Sequence[float] | None = None,
    seed: int = 0,
    tick: float = 0.25,
) -> CharacterizationResult:
    """Regenerate Fig. 3's series at the paper's default 10 runs per cap."""
    return characterize_job_types(
        runs_per_cap=runs_per_cap, caps=caps, seed=seed, tick=tick
    )


def format_table(result: CharacterizationResult) -> str:
    """Paper-vs-measured table: sensitivity at min cap and fit R² per type."""
    lines = [
        f"{'type':<6}{'rel T @140W':>12}{'±std':>8}{'fit R²':>9}{'paper R²':>10}",
    ]
    for name in sorted(result.runtimes):
        mean, std = result.relative_times(name)
        lines.append(
            f"{name:<6}{mean[0]:>12.3f}{std[0]:>8.3f}"
            f"{result.r2[name]:>9.3f}{PAPER_R2[name]:>10.2f}"
        )
    return "\n".join(lines)
