"""One module per paper figure; each regenerates the figure's rows/series.

Every module exposes a ``run_figN`` entry point returning a result dataclass
with the same series the paper plots, plus ``format_table`` helpers used by
the benchmark harnesses to print paper-vs-measured comparisons.  Defaults
match the paper's parameters; benchmarks pass scaled-down knobs (fewer
trials, shorter schedules) to keep runtimes reasonable.
"""

__all__ = ["fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11", "resilience"]
