"""Fig. 10: per-type slowdown under the 1-hour time-varying schedule (§6.3).

Four power-capping configurations over the same demand-response hour:

* **Uniform** — the same cap on every active node (performance-unaware);
* **Characterized** — even-slowdown with correct precharacterized models;
* **Misclassified** — BT (high sensitivity) classified as IS (low), no
  job-tier feedback;
* **Adjusted** — same misclassification, but online performance feedback
  lets the cluster tier recover.

Paper numbers to compare against: the characterized balancer reduces the
slowest job type from 11.6 % to 8.0 % slowdown; measured power stays under
24 % error at the 90th percentile in the worst case (misclassified without
feedback) and within 17 % otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tracking import tracking_error_series
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.budget.uniform import UniformCapBudgeter
from repro.experiments.fig9 import DEFAULT_RESERVE, build_demand_response_system
from repro.util.stats import confidence_interval_95
from repro.workloads.nas import NAS_TYPES, long_running_mix

__all__ = ["Fig10Result", "run_fig10", "format_table", "PAPER_SLOWEST"]

#: §6.3: the slowest job type improves from 11.6 % (uniform) to 8.0 %
#: (characterized).
PAPER_SLOWEST = {"Uniform": 0.116, "Characterized": 0.080}

POLICIES = ("Uniform", "Characterized", "Misclassified", "Adjusted")


@dataclass
class Fig10Result:
    # policy -> type -> slowdown samples (one per completed job)
    slowdowns: dict[str, dict[str, list[float]]]
    # policy -> 90th-percentile tracking error
    tracking_90th: dict[str, float]
    reserve: float

    def mean_slowdown(self, policy: str) -> dict[str, float]:
        return {
            name: float(np.mean(vals))
            for name, vals in self.slowdowns[policy].items()
            if vals
        }

    def slowest_type(self, policy: str) -> tuple[str, float]:
        means = self.mean_slowdown(policy)
        name = max(means, key=means.get)
        return name, means[name]


def _make_system(policy: str, *, duration: float, seed: int, utilization: float):
    common = dict(duration=duration, seed=seed, utilization=utilization)
    if policy == "Uniform":
        return build_demand_response_system(
            budgeter=UniformCapBudgeter(), feedback=False, **common
        )
    if policy == "Characterized":
        return build_demand_response_system(
            budgeter=EvenSlowdownBudgeter(), feedback=False, **common
        )
    if policy == "Misclassified":
        return build_demand_response_system(
            budgeter=EvenSlowdownBudgeter(),
            misclassify_bt_as_is=True,
            feedback=False,
            **common,
        )
    if policy == "Adjusted":
        return build_demand_response_system(
            budgeter=EvenSlowdownBudgeter(),
            misclassify_bt_as_is=True,
            feedback=True,
            **common,
        )
    raise ValueError(f"unknown policy {policy!r}")


def run_fig10(
    *,
    duration: float = 3600.0,
    trials: int = 1,
    seed: int = 0,
    utilization: float = 0.95,
    warmup: float = 300.0,
) -> Fig10Result:
    """Run the four policies over the same schedule family."""
    slowdowns: dict[str, dict[str, list[float]]] = {
        p: {jt.name: [] for jt in long_running_mix()} for p in POLICIES
    }
    tracking: dict[str, list[float]] = {p: [] for p in POLICIES}
    for policy in POLICIES:
        for trial in range(trials):
            system = _make_system(
                policy, duration=duration, seed=seed + trial, utilization=utilization
            )
            result = system.run(duration)
            for totals in result.completed:
                ref = NAS_TYPES[totals.job_type].compute_time(
                    NAS_TYPES[totals.job_type].p_max
                )
                slowdowns[policy][totals.job_type].append(totals.runtime / ref - 1.0)
            errors = tracking_error_series(
                result.power_trace,
                DEFAULT_RESERVE,
                t_start=warmup,
                smooth_samples=4,
            )
            tracking[policy].append(float(np.percentile(errors, 90)))
    return Fig10Result(
        slowdowns=slowdowns,
        tracking_90th={p: float(np.mean(v)) for p, v in tracking.items()},
        reserve=DEFAULT_RESERVE,
    )


def format_table(result: Fig10Result) -> str:
    types = [jt.name for jt in long_running_mix()]
    header = f"{'policy':<15}" + "".join(f"{t:>9}" for t in types) + f"{'err90':>8}"
    lines = [header]
    for policy in POLICIES:
        means = result.mean_slowdown(policy)
        cells = "".join(
            f"{100 * means.get(t, float('nan')):>8.1f}%" for t in types
        )
        lines.append(
            f"{policy:<15}{cells}{100 * result.tracking_90th[policy]:>7.1f}%"
        )
    slow_u = result.slowest_type("Uniform")
    slow_c = result.slowest_type("Characterized")
    lines.append(
        f"slowest type: uniform {slow_u[0]}={100 * slow_u[1]:.1f}% "
        f"(paper 11.6%), characterized {slow_c[0]}={100 * slow_c[1]:.1f}% (paper 8.0%)"
    )
    return "\n".join(lines)


def mean_slowdown_with_ci(
    result: Fig10Result, policy: str
) -> dict[str, tuple[float, float]]:
    """(mean, 95 % CI half-width) per type — Fig. 10's bars and error bars."""
    return {
        name: confidence_interval_95(vals)
        for name, vals in result.slowdowns[policy].items()
        if vals
    }
