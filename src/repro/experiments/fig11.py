"""Fig. 11: QoS degradation vs. node performance variation (§6.4).

1000-node tabular simulations: per-node performance coefficients drawn from
N(1, σ) with σ set so 99 % of performance lies within ±{0, 7.5, 15, 22.5,
30} %.  Ten trials per level, each with its own seed affecting coefficients
and job arrivals; 6 job types at 75 % utilization, scaled to 25× the node
counts of the 16-node experiments.  The figure reports the 90th percentile
of QoS degradation per type (target Q = 5), with mean and 90 % confidence
band over trials; power-tracking error must stay within the 30 %/90 %
constraint at every level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.aqa.regulation import BoundedRandomWalkSignal
from repro.tabsim.simulator import SimConfig, TabularClusterSimulator
from repro.tabsim.tables import SimJobType
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import long_running_mix

__all__ = ["Fig11Result", "run_fig11", "format_table", "DEFAULT_BANDS"]

DEFAULT_BANDS = (0.0, 0.075, 0.15, 0.225, 0.30)

#: Demand-response bid used for all Fig. 11 runs, chosen (via the bidder in
#: examples/demand_response_bidding.py) to keep tracking within constraint
#: at 75 % utilization on 1000 nodes.
DEFAULT_AVERAGE_POWER = 150_000.0
DEFAULT_RESERVE = 15_000.0


@dataclass
class Fig11Result:
    bands: tuple[float, ...]
    # type -> (n_bands, n_trials) of 90th-percentile QoS degradation
    qos90: dict[str, np.ndarray]
    # (n_bands, n_trials) 90th-percentile tracking error
    tracking90: np.ndarray
    qos_limit: float

    def mean_and_band(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(mean, 90 % CI half-width) over trials per variation level."""
        data = self.qos90[name]
        mean = data.mean(axis=1)
        n = data.shape[1]
        if n < 2:
            return mean, np.zeros_like(mean)
        t_crit = float(sps.t.ppf(0.95, df=n - 1))
        half = t_crit * data.std(axis=1, ddof=1) / np.sqrt(n)
        return mean, half

    def types_exceeding_limit(self) -> dict[str, float]:
        """First variation band at which each type's mean 90th-pct QoS
        crosses the limit (NaN if it never does)."""
        out: dict[str, float] = {}
        for name in self.qos90:
            mean, _ = self.mean_and_band(name)
            over = np.flatnonzero(mean > self.qos_limit)
            out[name] = float(self.bands[over[0]]) if over.size else float("nan")
        return out


def run_fig11(
    *,
    bands: tuple[float, ...] = DEFAULT_BANDS,
    trials: int = 10,
    num_nodes: int = 1000,
    node_scale: int = 25,
    utilization: float = 0.75,
    duration: float = 3600.0,
    qos_limit: float = 5.0,
    average_power: float = DEFAULT_AVERAGE_POWER,
    reserve: float = DEFAULT_RESERVE,
    qos_aware_capping: bool = False,
    seed: int = 0,
    warmup: float = 300.0,
) -> Fig11Result:
    """Run the variation sweep on the tabular simulator."""
    base_types = long_running_mix()
    sim_types = [
        SimJobType.from_job_type(jt, node_scale=node_scale, qos_limit=qos_limit)
        for jt in base_types
    ]
    scaled = [jt.scaled_nodes(node_scale) for jt in base_types]
    qos90 = {t.name: np.empty((len(bands), trials)) for t in sim_types}
    tracking90 = np.empty((len(bands), trials))
    for bi, band in enumerate(bands):
        for trial in range(trials):
            # "Each simulation uses a different random seed that impacts
            # performance coefficients and job arrival times" (§6.4).
            trial_seed = seed + 7919 * bi + trial
            generator = PoissonScheduleGenerator(
                scaled, utilization=utilization, total_nodes=num_nodes,
                seed=trial_seed,
            )
            schedule = generator.generate(duration)
            signal = BoundedRandomWalkSignal(
                duration * 4, step=4.0, seed=trial_seed + 1
            )
            config = SimConfig(
                num_nodes=num_nodes,
                average_power=average_power,
                reserve=reserve,
                variation_band=band,
                qos_aware_capping=qos_aware_capping,
                seed=trial_seed + 2,
            )
            sim = TabularClusterSimulator(sim_types, schedule, signal, config)
            result = sim.run(duration, drain=True)
            per_type = result.qos_percentile_by_type(90.0)
            for name, value in per_type.items():
                qos90[name][bi, trial] = value
            errors = result.tracking_errors(t_start=warmup, t_end=duration)
            tracking90[bi, trial] = float(np.percentile(errors, 90))
    return Fig11Result(
        bands=tuple(bands), qos90=qos90, tracking90=tracking90, qos_limit=qos_limit
    )


def format_table(result: Fig11Result) -> str:
    names = sorted(result.qos90)
    header = f"{'band':>7}" + "".join(f"{n:>8}" for n in names) + f"{'err90':>8}"
    lines = [header]
    for bi, band in enumerate(result.bands):
        cells = "".join(
            f"{result.qos90[n][bi].mean():>8.2f}" for n in names
        )
        lines.append(
            f"±{100 * band:4.1f}%{cells}{100 * result.tracking90[bi].mean():>7.1f}%"
        )
    lines.append(f"QoS limit: {result.qos_limit} (dashed line in the paper's figure)")
    return "\n".join(lines)
