"""Fig. 4: budgeter comparison with one instance of every job type (§6.1.1).

"Estimated job slowdown when 8 job types each execute one instance under a
range of shared power budgets", comparing the even-slowdown (ideal) budgeter
against even power caps.  Expected shape: even-power spreads slowdown widely
(sensitive jobs suffer), even-slowdown equalises it until low-sensitivity
jobs saturate at the 140 W platform floor and level off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.slowdown import JobScenario, sweep_budgets
from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.workloads.nas import NAS_TYPES, JobType, P_NODE_MIN

__all__ = ["Fig4Result", "run_fig4", "format_table"]


@dataclass
class Fig4Result:
    budgets: np.ndarray
    # policy name -> type name -> slowdown fractions per budget
    slowdowns: dict[str, dict[str, np.ndarray]]

    def max_slowdown(self, policy: str) -> np.ndarray:
        """Worst-job slowdown per budget — the quantity even-slowdown improves."""
        series = self.slowdowns[policy]
        return np.max(np.stack(list(series.values())), axis=0)


def _scenarios(job_types: dict[str, JobType]) -> list[JobScenario]:
    return [
        JobScenario.known(
            job_id=name,
            nodes=jt.nodes,
            model=jt.truth,
            p_min=P_NODE_MIN,
            p_max=jt.p_demand,
        )
        for name, jt in sorted(job_types.items())
    ]


def run_fig4(
    *,
    n_budgets: int = 40,
    job_types: dict[str, JobType] | None = None,
) -> Fig4Result:
    """Sweep shared budgets for one instance of each type (11 nodes total)."""
    types = dict(job_types) if job_types is not None else dict(NAS_TYPES)
    scenarios = _scenarios(types)
    floor = sum(s.p_min * s.nodes for s in scenarios)
    ceiling = sum(s.p_max * s.nodes for s in scenarios)
    budgets = np.linspace(floor, ceiling, n_budgets)
    slowdowns = {
        "even-slowdown": sweep_budgets(scenarios, EvenSlowdownBudgeter(), budgets),
        "even-power": sweep_budgets(scenarios, EvenPowerBudgeter(), budgets),
    }
    return Fig4Result(budgets=budgets, slowdowns=slowdowns)


def format_table(result: Fig4Result, *, n_rows: int = 8) -> str:
    """Worst-job slowdown per policy across the budget sweep."""
    idx = np.linspace(0, result.budgets.size - 1, n_rows).astype(int)
    lines = [f"{'budget (W)':>11} {'even-power max':>15} {'even-slowdown max':>18}"]
    ep = result.max_slowdown("even-power")
    es = result.max_slowdown("even-slowdown")
    for i in idx:
        lines.append(
            f"{result.budgets[i]:>11.0f} {100 * ep[i]:>14.1f}% {100 * es[i]:>17.1f}%"
        )
    return "\n".join(lines)
