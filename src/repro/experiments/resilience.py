"""Resilience scorecard: the Fig. 9 workload under the standard fault load.

The paper evaluates demand-response tracking on a healthy cluster; a
deployable framework must keep tracking through the faults real clusters
throw at it.  This experiment runs the *same* Fig. 9 workload (same seed,
same arrival schedule, same target signal) twice — once healthy, once under
:meth:`~repro.faults.FaultSchedule.standard_load` (one node crash, one
endpoint crash, 5 % link loss across the run, one corrupt status, one 60 s
meter outage) — and compares:

* tracking error (90th percentile, post-warmup) — faults must cost at most
  a bounded factor, not blow up control;
* completion — every submitted job drains, including the crash-requeued one;
* hygiene — zero ghost ``JobRecord`` entries once the cluster drains, and
  the fault event log is fully accounted for (every window closed).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorResult, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget, PowerTargetSource, SteppedTarget
from repro.experiments.fig9 import (
    DEFAULT_AVERAGE_POWER,
    DEFAULT_RESERVE,
    Fig9Result,
    build_demand_response_system,
)
from repro.faults.events import HeadNodeCrash, NetworkPartition, PartitionEnd, PartitionStart
from repro.faults.schedule import FaultSchedule
from repro.modeling.classifier import JobClassifier
from repro.telemetry import summarize_incidents
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import NAS_TYPES, P_NODE_MIN, long_running_mix

__all__ = [
    "ResilienceResult",
    "run_resilience",
    "format_table",
    "HeadNodeRecoveryResult",
    "run_headnode_recovery",
    "format_headnode_table",
    "PartitionDrillResult",
    "run_partition_drill",
    "format_partition_table",
]


@dataclass
class ResilienceResult:
    """Healthy-vs-faulted comparison of one demand-response run."""

    healthy: Fig9Result
    faulted: Fig9Result
    schedule: FaultSchedule
    ghost_jobs: int  # manager JobRecords alive after the settle window
    injector_quiescent: bool  # every event fired, every fault window closed
    # Telemetry streams from the faulted run (DESIGN.md §8): incidents by
    # category (event bus) and control-plane decision counters (registry).
    incident_counts: dict[str, int] = field(default_factory=dict)
    decision_counts: dict[str, float] = field(default_factory=dict)

    @property
    def healthy_error90(self) -> float:
        return self.healthy.error_at_90th()

    @property
    def faulted_error90(self) -> float:
        return self.faulted.error_at_90th()

    @property
    def degradation_ratio(self) -> float:
        """Faulted / healthy 90th-percentile tracking error."""
        base = self.healthy_error90
        return self.faulted_error90 / base if base > 0 else float("inf")

    @property
    def requeued(self) -> list[str]:
        return self.faulted.result.requeued

    @property
    def requeued_completed(self) -> bool:
        """Every job requeued by a crash eventually produced totals."""
        done = {t.job_id for t in self.faulted.result.completed}
        return all(job_id in done for job_id in self.requeued)

    @property
    def fault_log(self) -> list[str]:
        return self.faulted.result.fault_log


def _decision_summary(system: AnorSystem) -> dict[str, float]:
    """Control-plane decision counters from the run's metrics registry.

    Purely observational — the counters are maintained by the telemetry
    subsystem and survive head-node restarts (the registry outlives any one
    manager instance).
    """
    reg = system.telemetry.registry
    names = {
        "budget rounds": "anor_budget_rounds_total",
        "caps sent": "anor_caps_sent_total",
        "models accepted": "anor_models_accepted_total",
        "models rejected": "anor_models_rejected_total",
        "statuses rejected": "anor_statuses_rejected_total",
        "jobs evicted": "anor_jobs_evicted_total",
        "meter faults": "anor_meter_faults_total",
        "link msgs dropped": "anor_link_messages_dropped_total",
    }
    out: dict[str, float] = {}
    for label, metric in names.items():
        if metric == "anor_link_messages_dropped_total":
            # Labelled by reason; sum the family.
            total = 0.0
            for name, _, _, rows in reg.families():
                if name == metric:
                    total = sum(inst.value for _, inst in rows)
            out[label] = total
            continue
        value = reg.get_value(metric)
        if value is not None:
            out[label] = value
    return out


def _run_one(
    *,
    duration: float,
    seed: int,
    warmup: float,
    average_power: float,
    reserve: float,
    fault_schedule: FaultSchedule | None,
) -> tuple[Fig9Result, int, bool, AnorSystem]:
    # Telemetry rides along on the faulted/healthy comparison: incidents and
    # decision counters feed the resilience report, and bit-identity with
    # telemetry off is separately pinned by tests/test_telemetry_noop.py.
    system = build_demand_response_system(
        duration=duration,
        average_power=average_power,
        reserve=reserve,
        seed=seed,
        fault_schedule=fault_schedule,
        config=AnorConfig(seed=seed, telemetry_enabled=True),
    )
    result = system.run(duration, until_idle=True, max_time=duration + 3600.0)
    # Settle: after the last job drains, goodbyes are still in flight and any
    # silently-dead record needs dead_job_timeout to pass before eviction.
    settle = int(system.config.dead_job_timeout + 10)
    for _ in range(settle):
        system.step()
    # Score tracking only over the scheduled window: past `duration` the
    # cluster is draining toward empty while the target stays committed, so
    # the tail would swamp the healthy-vs-faulted comparison for both runs.
    trace = result.power_trace
    if len(trace):
        result = replace(result, power_trace=trace[trace[:, 0] <= duration])
    fig9 = Fig9Result(
        result=result,
        average_power=average_power,
        reserve=reserve,
        warmup=warmup,
    )
    quiescent = system.faults.quiescent if system.faults is not None else True
    ghosts = len(system.manager.jobs) if system.manager is not None else 0
    return fig9, ghosts, quiescent, system


def run_resilience(
    *,
    duration: float = 3600.0,
    seed: int = 0,
    warmup: float = 300.0,
    average_power: float = DEFAULT_AVERAGE_POWER,
    reserve: float = DEFAULT_RESERVE,
    schedule: FaultSchedule | None = None,
) -> ResilienceResult:
    """Run the Fig. 9 workload healthy and under a fault load, and compare."""
    if schedule is None:
        schedule = FaultSchedule.standard_load(duration)
    healthy, _, _, _ = _run_one(
        duration=duration,
        seed=seed,
        warmup=warmup,
        average_power=average_power,
        reserve=reserve,
        fault_schedule=None,
    )
    faulted, ghosts, quiescent, faulted_sys = _run_one(
        duration=duration,
        seed=seed,
        warmup=warmup,
        average_power=average_power,
        reserve=reserve,
        fault_schedule=schedule,
    )
    return ResilienceResult(
        healthy=healthy,
        faulted=faulted,
        schedule=schedule,
        ghost_jobs=ghosts,
        injector_quiescent=quiescent,
        incident_counts=faulted_sys.telemetry.incident_counts,
        decision_counts=_decision_summary(faulted_sys),
    )


def _build_static_system(
    *,
    duration: float,
    seed: int,
    target_power: float,
    num_nodes: int,
    checkpoint_dir: str | None,
    checkpoint_period: float,
    recovery_timeout: float,
    fault_schedule: FaultSchedule | None,
    target_source: PowerTargetSource | None = None,
    lease_ttl: float | None = None,
    lease_ramp_seconds: float = 30.0,
    reliable_messaging: bool = False,
    breaker_margin: float | None = None,
) -> AnorSystem:
    """The head-node recovery workload: long jobs under a *static* target.

    A static target makes the golden/recovered comparison exact — every
    divergence between the two traces is attributable to the outage, not to
    target motion racing the recovery window.  The partition drill reuses the
    same workload with a stepped target and the lease/reliability knobs on.
    """
    types = {jt.name: jt for jt in long_running_mix()}
    generator = PoissonScheduleGenerator(
        list(types.values()), utilization=0.9, total_nodes=num_nodes,
        seed=seed * 7919 + 13,
    )
    schedule = generator.generate(duration)
    cfg = AnorConfig(
        num_nodes=num_nodes,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        checkpoint_period=checkpoint_period,
        recovery_timeout=recovery_timeout,
        telemetry_enabled=True,
        lease_ttl=lease_ttl,
        lease_ramp_seconds=lease_ramp_seconds,
        reliable_messaging=reliable_messaging,
        breaker_margin=breaker_margin,
    )
    return AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=target_source or ConstantTarget(target_power),
        classifier=JobClassifier(precharacterized_models(NAS_TYPES)),
        schedule=schedule,
        job_types=types,
        config=cfg,
        fault_schedule=fault_schedule,
    )


def _drive(system: AnorSystem, *, max_time: float) -> tuple[AnorResult, np.ndarray]:
    """Run a system to drain, sampling the manager's planned draw per round.

    Returns ``(result, rounds)`` where rounds columns are (time, budget
    ceiling = max(target+correction, floor), planned draw = idle+reserved+
    allocated) — the raw material for the never-exceed-target invariant.
    """
    rows: list[tuple[float, float, float]] = []
    last_time = None
    while (
        system._pending or system._queue or system.cluster.running
    ) and system.cluster.clock.now < max_time:
        system.step()
        mgr = system.manager
        rnd = mgr.last_round if mgr is not None else None
        if rnd is not None and rnd.time != last_time:
            last_time = rnd.time
            ceiling = max(rnd.target + rnd.correction, rnd.floor)
            planned = rnd.idle_power + rnd.reserved + rnd.allocated
            rows.append((rnd.time, ceiling, planned))
    result = system.run(0.0)
    rounds = np.asarray(rows) if rows else np.empty((0, 3))
    return result, rounds


@dataclass
class HeadNodeRecoveryResult:
    """Golden-vs-recovered comparison of one head-node outage."""

    golden: AnorResult
    recovered: AnorResult
    target_power: float
    crash_time: float
    down_for: float
    recovery_merges: int  # live jobs reconciled against checkpointed state
    checkpoints_written: int
    rounds: np.ndarray  # (time, ceiling, planned) for the recovered run
    convergence_tol: float = 0.05
    convergence_window: int = 30
    orphaned: list[str] = field(default_factory=list)
    # Incident stream from the recovered run's event bus (crash, journal
    # tail drops, cold restarts, restart cancellations ... by category).
    incident_counts: dict[str, int] = field(default_factory=dict)

    @property
    def restart_time(self) -> float:
        return self.crash_time + self.down_for

    @property
    def budget_violations(self) -> int:
        """Budget rounds whose planned draw exceeded the enforceable ceiling.

        0.1 W of slack on a multi-kilowatt ceiling absorbs the budgeter's
        bisection/fp slop (present in healthy runs too); anything beyond it
        is a real over-commitment.
        """
        if not len(self.rounds):
            return 0
        return int(np.sum(self.rounds[:, 2] > self.rounds[:, 1] + 0.1))

    @property
    def lost_jobs(self) -> list[str]:
        """Jobs the golden run completed that the recovered run lost."""
        gold = {t.job_id for t in self.golden.completed}
        got = {t.job_id for t in self.recovered.completed}
        return sorted(gold - got)

    @property
    def double_admitted(self) -> list[str]:
        """Jobs that produced completion totals more than once."""
        seen: dict[str, int] = {}
        for t in self.recovered.completed:
            seen[t.job_id] = seen.get(t.job_id, 0) + 1
        return sorted(j for j, n in seen.items() if n > 1)

    @property
    def convergence_time(self) -> float | None:
        """Seconds after restart until the recovered trace re-converges.

        Convergence = the recovered run's measured power staying within
        ``convergence_tol``·target of the golden run's for
        ``convergence_window`` consecutive samples.  ``None`` = never.
        """
        gold, rec = self.golden.power_trace, self.recovered.power_trace
        n = min(len(gold), len(rec))
        if n == 0:
            return None
        mask = np.abs(rec[:n, 2] - gold[:n, 2]) <= self.convergence_tol * self.target_power
        start = np.searchsorted(rec[:n, 0], self.restart_time)
        window = self.convergence_window
        for i in range(start, n - window + 1):
            if mask[i : i + window].all():
                return float(rec[i, 0] - self.restart_time)
        return None


def run_headnode_recovery(
    *,
    duration: float = 900.0,
    seed: int = 1,
    target_power: float = 16 * 170.0,
    num_nodes: int = 16,
    crash_time: float = 300.0,
    down_for: float = 60.0,
    checkpoint_dir: str | None = None,
    checkpoint_period: float = 30.0,
    recovery_timeout: float = 30.0,
) -> HeadNodeRecoveryResult:
    """Crash the head node mid-run and score the recovery against a golden run.

    Both runs share the seed, schedule, and static target; only the crash
    differs.  The golden run also checkpoints (into a sibling directory), so
    any overhead of persistence is present on both sides of the comparison.
    """
    base = Path(checkpoint_dir) if checkpoint_dir is not None else Path(
        tempfile.mkdtemp(prefix="anor-headnode-")
    )
    max_time = duration + 7200.0
    golden_sys = _build_static_system(
        duration=duration, seed=seed, target_power=target_power,
        num_nodes=num_nodes, checkpoint_dir=str(base / "golden"),
        checkpoint_period=checkpoint_period, recovery_timeout=recovery_timeout,
        fault_schedule=None,
    )
    golden, _ = _drive(golden_sys, max_time=max_time)
    recovered_sys = _build_static_system(
        duration=duration, seed=seed, target_power=target_power,
        num_nodes=num_nodes, checkpoint_dir=str(base / "recovered"),
        checkpoint_period=checkpoint_period, recovery_timeout=recovery_timeout,
        fault_schedule=FaultSchedule(
            [HeadNodeCrash(time=crash_time, down_for=down_for)]
        ),
    )
    recovered, rounds = _drive(recovered_sys, max_time=max_time)
    merges = (
        recovered_sys.manager.recovery_merges
        if recovered_sys.manager is not None
        else 0
    )
    checkpoints = (
        recovered_sys.durable.checkpoints_written
        if recovered_sys.durable is not None
        else 0
    )
    return HeadNodeRecoveryResult(
        golden=golden,
        recovered=recovered,
        target_power=target_power,
        crash_time=crash_time,
        down_for=down_for,
        recovery_merges=merges,
        checkpoints_written=checkpoints,
        rounds=rounds,
        orphaned=list(recovered.orphaned),
        incident_counts=dict(recovered_sys.telemetry.incident_counts),
    )


def format_headnode_table(res: HeadNodeRecoveryResult) -> str:
    conv = res.convergence_time
    lines = [
        f"head-node outage               : t={res.crash_time:.0f}s for {res.down_for:.0f}s",
        f"checkpoints written            : {res.checkpoints_written}",
        f"budget rounds over ceiling     : {res.budget_violations}",
        f"jobs completed golden/recovered: "
        f"{len(res.golden.completed)}/{len(res.recovered.completed)}",
        f"jobs lost to the outage        : {len(res.lost_jobs)}"
        + (f"  {res.lost_jobs}" if res.lost_jobs else ""),
        f"double-admitted jobs           : {len(res.double_admitted)}",
        f"live jobs reconciled (re-HELLO): {res.recovery_merges}",
        f"orphans after recovery window  : {len(res.orphaned)}"
        + (f"  {res.orphaned}" if res.orphaned else ""),
        "trace re-convergence           : "
        + (f"{conv:.0f}s after restart" if conv is not None else "NEVER"),
        "recovery log:",
    ]
    lines.extend(f"  {line}" for line in res.recovered.recovery_log)
    if res.incident_counts:
        lines.append("incident summary:")
        lines.extend(summarize_incidents(res.incident_counts))
    return "\n".join(lines)


def format_table(res: ResilienceResult) -> str:
    lines = [
        f"healthy tracking error 90th pct: {100 * res.healthy_error90:5.1f}%",
        f"faulted tracking error 90th pct: {100 * res.faulted_error90:5.1f}%"
        f"  ({res.degradation_ratio:.2f}x healthy, bound 1.50x)",
        f"jobs completed healthy/faulted : "
        f"{len(res.healthy.result.completed)}/{len(res.faulted.result.completed)}",
        f"jobs requeued by crashes       : {len(res.requeued)}"
        f"  (all finished: {'yes' if res.requeued_completed else 'NO'})",
        f"ghost job records at drain     : {res.ghost_jobs}",
        f"fault windows all closed       : "
        f"{'yes' if res.injector_quiescent else 'NO'}",
        "fault event log:",
    ]
    lines.extend(f"  {line}" for line in res.fault_log)
    if res.incident_counts:
        lines.append("incident summary:")
        lines.extend(summarize_incidents(res.incident_counts))
    if res.decision_counts:
        lines.append("control-plane decisions (faulted run):")
        width = max(len(k) for k in res.decision_counts)
        lines.extend(
            f"  {label:<{width}} : {int(value)}"
            for label, value in res.decision_counts.items()
        )
    return "\n".join(lines)


# ------------------------------------------------------------ partition drill


@dataclass
class PartitionDrillResult:
    """Golden-vs-partitioned comparison of one head↔endpoint partition.

    Both runs share the seed, schedule, stepped target, and lease
    configuration; only the :class:`~repro.faults.NetworkPartition` differs.
    The target steps *down* shortly after the partition opens — the dangerous
    direction: every endpoint holds a cap sized for the old, higher target
    and the head cannot deliver the lower one.  The drill's headline claim is
    the dead-man bound: the cluster may sit above the enforceable limit only
    for a stretch bounded by ``lease_ttl + lease_ramp (+ slack)``.
    """

    golden: AnorResult
    partitioned: AnorResult
    high_power: float
    low_power: float
    step_time: float
    partition_time: float
    partition_duration: float
    lease_ttl: float
    lease_ramp: float
    floor_power: float  # enforceable cluster floor (all nodes at p_min)
    slack: float = 30.0  # control-period + epoch granularity allowance
    tol: float = 0.10
    injector_quiescent: bool = True
    convergence_window: int = 30
    incident_counts: dict[str, int] = field(default_factory=dict)
    partition_events: list = field(default_factory=list)

    @property
    def heal_time(self) -> float:
        return self.partition_time + self.partition_duration

    @property
    def overshoot_bound(self) -> float:
        """The fail-safe guarantee: max tolerated over-limit stretch."""
        return self.lease_ttl + self.lease_ramp + self.slack

    def _longest_over_limit(self, trace: np.ndarray) -> float:
        """Longest contiguous stretch past ``partition_time`` with measured
        power above ``max(target, floor)·(1+tol)``, in seconds."""
        if not len(trace):
            return 0.0
        t, target, measured = trace[:, 0], trace[:, 1], trace[:, 2]
        limit = np.maximum(target, self.floor_power) * (1.0 + self.tol)
        over = (measured > limit) & (t >= self.partition_time)
        best, start = 0.0, None
        for i in range(len(t)):
            if over[i]:
                if start is None:
                    start = t[i]
                best = max(best, float(t[i] - start))
            else:
                start = None
        return best

    @property
    def overshoot_seconds(self) -> float:
        return self._longest_over_limit(self.partitioned.power_trace)

    @property
    def golden_overshoot_seconds(self) -> float:
        return self._longest_over_limit(self.golden.power_trace)

    @property
    def degraded_endpoints(self) -> int:
        """Lease expiries observed (degraded-autonomy incidents)."""
        return self.incident_counts.get("degraded-autonomy-start", 0)

    @property
    def partitions_detected(self) -> int:
        return sum(1 for f in self.partition_events if isinstance(f, PartitionStart))

    @property
    def partitions_healed(self) -> int:
        return sum(1 for f in self.partition_events if isinstance(f, PartitionEnd))

    @property
    def lost_jobs(self) -> list[str]:
        """Jobs the golden run completed that the partitioned run lost."""
        gold = {t.job_id for t in self.golden.completed}
        got = {t.job_id for t in self.partitioned.completed}
        return sorted(gold - got)

    @property
    def convergence_time(self) -> float | None:
        """Seconds after the heal until the partitioned trace re-converges.

        Convergence = measured power staying within ``tol``·low_power of the
        golden run's for ``convergence_window`` consecutive samples.
        """
        gold, part = self.golden.power_trace, self.partitioned.power_trace
        n = min(len(gold), len(part))
        if n == 0:
            return None
        mask = np.abs(part[:n, 2] - gold[:n, 2]) <= self.tol * self.low_power
        start = int(np.searchsorted(part[:n, 0], self.heal_time))
        window = self.convergence_window
        for i in range(start, n - window + 1):
            if mask[i : i + window].all():
                return float(part[i, 0] - self.heal_time)
        return None


def run_partition_drill(
    *,
    duration: float = 900.0,
    seed: int = 7,
    num_nodes: int = 16,
    high_power: float | None = None,
    low_power: float | None = None,
    partition_time: float = 300.0,
    partition_duration: float = 240.0,
    step_into: float = 10.0,
    lease_ttl: float = 30.0,
    lease_ramp: float = 60.0,
    slack: float = 30.0,
    tol: float = 0.10,
    breaker_margin: float | None = None,
) -> PartitionDrillResult:
    """Partition the head from every endpoint mid-run and score the fail-safe.

    The target steps from ``high_power`` down to ``low_power`` at
    ``partition_time + step_into`` — inside the partition window, while the
    endpoints still hold valid leases sized for the high target.  Leases then
    expire, caps decay to the floor, the partition heals, and tracking must
    re-converge to the golden run.
    """
    if high_power is None:
        high_power = num_nodes * 220.0
    if low_power is None:
        low_power = num_nodes * 175.0
    step_time = partition_time + step_into
    if not partition_time < step_time < partition_time + partition_duration:
        raise ValueError(
            f"target step at t={step_time} must fall inside the partition "
            f"window [{partition_time}, {partition_time + partition_duration}]"
        )
    target = SteppedTarget([0.0, step_time], [high_power, low_power])
    common = dict(
        duration=duration,
        seed=seed,
        target_power=high_power,
        num_nodes=num_nodes,
        checkpoint_dir=None,
        checkpoint_period=30.0,
        recovery_timeout=30.0,
        target_source=target,
        lease_ttl=lease_ttl,
        lease_ramp_seconds=lease_ramp,
        reliable_messaging=True,
        breaker_margin=breaker_margin,
    )
    max_time = duration + 7200.0
    golden_sys = _build_static_system(fault_schedule=None, **common)
    golden, _ = _drive(golden_sys, max_time=max_time)
    part_sys = _build_static_system(
        fault_schedule=FaultSchedule(
            [NetworkPartition(time=partition_time, duration=partition_duration)]
        ),
        **common,
    )
    partitioned, _ = _drive(part_sys, max_time=max_time)
    quiescent = part_sys.faults.quiescent if part_sys.faults is not None else True
    return PartitionDrillResult(
        golden=golden,
        partitioned=partitioned,
        high_power=high_power,
        low_power=low_power,
        step_time=step_time,
        partition_time=partition_time,
        partition_duration=partition_duration,
        lease_ttl=lease_ttl,
        lease_ramp=lease_ramp,
        floor_power=num_nodes * P_NODE_MIN,
        slack=slack,
        tol=tol,
        injector_quiescent=quiescent,
        incident_counts=dict(part_sys.telemetry.incident_counts),
        partition_events=list(partitioned.partition_events),
    )


def format_partition_table(res: PartitionDrillResult) -> str:
    conv = res.convergence_time
    lines = [
        f"partition window               : t={res.partition_time:.0f}s "
        f"for {res.partition_duration:.0f}s (all head↔endpoint links)",
        f"target step (inside partition) : {res.high_power:.0f}W -> "
        f"{res.low_power:.0f}W at t={res.step_time:.0f}s",
        f"lease: ttl/ramp/slack          : {res.lease_ttl:.0f}s / "
        f"{res.lease_ramp:.0f}s / {res.slack:.0f}s",
        f"over-limit stretch (partition) : {res.overshoot_seconds:.0f}s "
        f"(bound {res.overshoot_bound:.0f}s, golden "
        f"{res.golden_overshoot_seconds:.0f}s)",
        f"lease expiries (degraded mode) : {res.degraded_endpoints}",
        f"partitions detected/healed     : {res.partitions_detected}/"
        f"{res.partitions_healed}",
        f"jobs completed golden/partition: "
        f"{len(res.golden.completed)}/{len(res.partitioned.completed)}",
        f"jobs lost to the partition     : {len(res.lost_jobs)}"
        + (f"  {res.lost_jobs}" if res.lost_jobs else ""),
        f"fault windows all closed       : "
        f"{'yes' if res.injector_quiescent else 'NO'}",
        "trace re-convergence           : "
        + (f"{conv:.0f}s after heal" if conv is not None else "NEVER"),
    ]
    if res.incident_counts:
        lines.append("incident summary:")
        lines.extend(summarize_incidents(res.incident_counts))
    return "\n".join(lines)
