"""Resilience scorecard: the Fig. 9 workload under the standard fault load.

The paper evaluates demand-response tracking on a healthy cluster; a
deployable framework must keep tracking through the faults real clusters
throw at it.  This experiment runs the *same* Fig. 9 workload (same seed,
same arrival schedule, same target signal) twice — once healthy, once under
:meth:`~repro.faults.FaultSchedule.standard_load` (one node crash, one
endpoint crash, 5 % link loss across the run, one corrupt status, one 60 s
meter outage) — and compares:

* tracking error (90th percentile, post-warmup) — faults must cost at most
  a bounded factor, not blow up control;
* completion — every submitted job drains, including the crash-requeued one;
* hygiene — zero ghost ``JobRecord`` entries once the cluster drains, and
  the fault event log is fully accounted for (every window closed).
"""

from __future__ import annotations

import math
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.analysis.tracking import tracking_error_series
from repro.aqa.regulation import BoundedRandomWalkSignal
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorResult, AnorSystem, precharacterized_models
from repro.core.targets import (
    ConstantTarget,
    PowerTargetSource,
    RegulationTarget,
    SteppedTarget,
    load_target_file,
    save_target_file,
)
from repro.experiments.fig9 import (
    DEFAULT_AVERAGE_POWER,
    DEFAULT_RESERVE,
    Fig9Result,
    build_demand_response_system,
)
from repro.facility.shed import SEVERITY_VALUES
from repro.faults.events import (
    ByzantineModel,
    DemandResponseEmergency,
    FeederLoss,
    HeadNodeCrash,
    MeterDrift,
    NetworkPartition,
    PartitionEnd,
    PartitionStart,
    StuckActuator,
    ThermalDerate,
)
from repro.faults.schedule import FaultSchedule
from repro.modeling.classifier import JobClassifier
from repro.telemetry import summarize_incidents
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import NAS_TYPES, P_NODE_MIN, long_running_mix

__all__ = [
    "ResilienceResult",
    "run_resilience",
    "format_table",
    "HeadNodeRecoveryResult",
    "run_headnode_recovery",
    "format_headnode_table",
    "PartitionDrillResult",
    "run_partition_drill",
    "format_partition_table",
    "ByzantineDrillResult",
    "run_byzantine_drill",
    "format_byzantine_table",
    "ChaosSoakResult",
    "run_chaos_soak",
    "format_soak_table",
    "ForecastDrillResult",
    "run_forecast_drill",
    "format_forecast_table",
    "ShedDrillResult",
    "run_shed_drill",
    "format_shed_table",
]


@dataclass
class ResilienceResult:
    """Healthy-vs-faulted comparison of one demand-response run."""

    healthy: Fig9Result
    faulted: Fig9Result
    schedule: FaultSchedule
    ghost_jobs: int  # manager JobRecords alive after the settle window
    injector_quiescent: bool  # every event fired, every fault window closed
    # Telemetry streams from the faulted run (DESIGN.md §8): incidents by
    # category (event bus) and control-plane decision counters (registry).
    incident_counts: dict[str, int] = field(default_factory=dict)
    decision_counts: dict[str, float] = field(default_factory=dict)

    @property
    def healthy_error90(self) -> float:
        return self.healthy.error_at_90th()

    @property
    def faulted_error90(self) -> float:
        return self.faulted.error_at_90th()

    @property
    def degradation_ratio(self) -> float:
        """Faulted / healthy 90th-percentile tracking error."""
        base = self.healthy_error90
        return self.faulted_error90 / base if base > 0 else float("inf")

    @property
    def requeued(self) -> list[str]:
        return self.faulted.result.requeued

    @property
    def requeued_completed(self) -> bool:
        """Every job requeued by a crash eventually produced totals."""
        done = {t.job_id for t in self.faulted.result.completed}
        return all(job_id in done for job_id in self.requeued)

    @property
    def fault_log(self) -> list[str]:
        return self.faulted.result.fault_log


def _decision_summary(system: AnorSystem) -> dict[str, float]:
    """Control-plane decision counters from the run's metrics registry.

    Purely observational — the counters are maintained by the telemetry
    subsystem and survive head-node restarts (the registry outlives any one
    manager instance).
    """
    reg = system.telemetry.registry
    names = {
        "budget rounds": "anor_budget_rounds_total",
        "caps sent": "anor_caps_sent_total",
        "models accepted": "anor_models_accepted_total",
        "models rejected": "anor_models_rejected_total",
        "statuses rejected": "anor_statuses_rejected_total",
        "jobs evicted": "anor_jobs_evicted_total",
        "meter faults": "anor_meter_faults_total",
        "link msgs dropped": "anor_link_messages_dropped_total",
    }
    out: dict[str, float] = {}
    for label, metric in names.items():
        if metric == "anor_link_messages_dropped_total":
            # Labelled by reason; sum the family.
            total = 0.0
            for name, _, _, rows in reg.families():
                if name == metric:
                    total = sum(inst.value for _, inst in rows)
            out[label] = total
            continue
        value = reg.get_value(metric)
        if value is not None:
            out[label] = value
    return out


def _run_one(
    *,
    duration: float,
    seed: int,
    warmup: float,
    average_power: float,
    reserve: float,
    fault_schedule: FaultSchedule | None,
) -> tuple[Fig9Result, int, bool, AnorSystem]:
    # Telemetry rides along on the faulted/healthy comparison: incidents and
    # decision counters feed the resilience report, and bit-identity with
    # telemetry off is separately pinned by tests/test_telemetry_noop.py.
    system = build_demand_response_system(
        duration=duration,
        average_power=average_power,
        reserve=reserve,
        seed=seed,
        fault_schedule=fault_schedule,
        config=AnorConfig(seed=seed, telemetry_enabled=True),
    )
    result = system.run(duration, until_idle=True, max_time=duration + 3600.0)
    # Settle: after the last job drains, goodbyes are still in flight and any
    # silently-dead record needs dead_job_timeout to pass before eviction.
    settle = int(system.config.dead_job_timeout + 10)
    for _ in range(settle):
        system.step()
    # Score tracking only over the scheduled window: past `duration` the
    # cluster is draining toward empty while the target stays committed, so
    # the tail would swamp the healthy-vs-faulted comparison for both runs.
    trace = result.power_trace
    if len(trace):
        result = replace(result, power_trace=trace[trace[:, 0] <= duration])
    fig9 = Fig9Result(
        result=result,
        average_power=average_power,
        reserve=reserve,
        warmup=warmup,
    )
    quiescent = system.faults.quiescent if system.faults is not None else True
    ghosts = len(system.manager.jobs) if system.manager is not None else 0
    return fig9, ghosts, quiescent, system


def run_resilience(
    *,
    duration: float = 3600.0,
    seed: int = 0,
    warmup: float = 300.0,
    average_power: float = DEFAULT_AVERAGE_POWER,
    reserve: float = DEFAULT_RESERVE,
    schedule: FaultSchedule | None = None,
) -> ResilienceResult:
    """Run the Fig. 9 workload healthy and under a fault load, and compare."""
    if schedule is None:
        schedule = FaultSchedule.standard_load(duration)
    healthy, _, _, _ = _run_one(
        duration=duration,
        seed=seed,
        warmup=warmup,
        average_power=average_power,
        reserve=reserve,
        fault_schedule=None,
    )
    faulted, ghosts, quiescent, faulted_sys = _run_one(
        duration=duration,
        seed=seed,
        warmup=warmup,
        average_power=average_power,
        reserve=reserve,
        fault_schedule=schedule,
    )
    return ResilienceResult(
        healthy=healthy,
        faulted=faulted,
        schedule=schedule,
        ghost_jobs=ghosts,
        injector_quiescent=quiescent,
        incident_counts=faulted_sys.telemetry.incident_counts,
        decision_counts=_decision_summary(faulted_sys),
    )


def _build_static_system(
    *,
    duration: float,
    seed: int,
    target_power: float,
    num_nodes: int,
    checkpoint_dir: str | None,
    checkpoint_period: float,
    recovery_timeout: float,
    fault_schedule: FaultSchedule | None,
    target_source: PowerTargetSource | None = None,
    lease_ttl: float | None = None,
    lease_ramp_seconds: float = 30.0,
    reliable_messaging: bool = False,
    breaker_margin: float | None = None,
    audit_enabled: bool = False,
    correction_gain: float | None = None,
    shed_enabled: bool = False,
    shed_classes: dict | None = None,
    shed_ramp_watts: float = 100.0,
) -> AnorSystem:
    """The head-node recovery workload: long jobs under a *static* target.

    A static target makes the golden/recovered comparison exact — every
    divergence between the two traces is attributable to the outage, not to
    target motion racing the recovery window.  The partition drill reuses the
    same workload with a stepped target and the lease/reliability knobs on.
    """
    types = {jt.name: jt for jt in long_running_mix()}
    generator = PoissonScheduleGenerator(
        list(types.values()), utilization=0.9, total_nodes=num_nodes,
        seed=seed * 7919 + 13,
    )
    schedule = generator.generate(duration)
    cfg = AnorConfig(
        num_nodes=num_nodes,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        checkpoint_period=checkpoint_period,
        recovery_timeout=recovery_timeout,
        telemetry_enabled=True,
        lease_ttl=lease_ttl,
        lease_ramp_seconds=lease_ramp_seconds,
        reliable_messaging=reliable_messaging,
        breaker_margin=breaker_margin,
        audit_enabled=audit_enabled,
        shed_enabled=shed_enabled,
        shed_classes=shed_classes,
        shed_ramp_watts=shed_ramp_watts,
    )
    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=target_source or ConstantTarget(target_power),
        classifier=JobClassifier(precharacterized_models(NAS_TYPES)),
        schedule=schedule,
        job_types=types,
        config=cfg,
        fault_schedule=fault_schedule,
    )
    if correction_gain is not None:
        # Scenario override (e.g. the byzantine drill zeroes the integral
        # trim so overshoot attribution is purely the audit layer's doing).
        system.manager.correction_gain = correction_gain
    return system


def _drive(system: AnorSystem, *, max_time: float) -> tuple[AnorResult, np.ndarray]:
    """Run a system to drain, sampling the manager's planned draw per round.

    Returns ``(result, rounds)`` where rounds columns are (time, budget
    ceiling = max(target+correction, floor), planned draw = idle+reserved+
    allocated) — the raw material for the never-exceed-target invariant.
    """
    rows: list[tuple[float, float, float]] = []
    last_time = None
    while (
        system._pending or system._queue or system.cluster.running
    ) and system.cluster.clock.now < max_time:
        system.step()
        mgr = system.manager
        rnd = mgr.last_round if mgr is not None else None
        if rnd is not None and rnd.time != last_time:
            last_time = rnd.time
            ceiling = max(rnd.target + rnd.correction, rnd.floor)
            planned = rnd.idle_power + rnd.reserved + rnd.allocated
            rows.append((rnd.time, ceiling, planned))
    result = system.run(0.0)
    rounds = np.asarray(rows) if rows else np.empty((0, 3))
    return result, rounds


@dataclass
class HeadNodeRecoveryResult:
    """Golden-vs-recovered comparison of one head-node outage."""

    golden: AnorResult
    recovered: AnorResult
    target_power: float
    crash_time: float
    down_for: float
    recovery_merges: int  # live jobs reconciled against checkpointed state
    checkpoints_written: int
    rounds: np.ndarray  # (time, ceiling, planned) for the recovered run
    convergence_tol: float = 0.05
    convergence_window: int = 30
    orphaned: list[str] = field(default_factory=list)
    # Incident stream from the recovered run's event bus (crash, journal
    # tail drops, cold restarts, restart cancellations ... by category).
    incident_counts: dict[str, int] = field(default_factory=dict)

    @property
    def restart_time(self) -> float:
        return self.crash_time + self.down_for

    @property
    def budget_violations(self) -> int:
        """Budget rounds whose planned draw exceeded the enforceable ceiling.

        0.1 W of slack on a multi-kilowatt ceiling absorbs the budgeter's
        bisection/fp slop (present in healthy runs too); anything beyond it
        is a real over-commitment.
        """
        if not len(self.rounds):
            return 0
        return int(np.sum(self.rounds[:, 2] > self.rounds[:, 1] + 0.1))

    @property
    def lost_jobs(self) -> list[str]:
        """Jobs the golden run completed that the recovered run lost."""
        gold = {t.job_id for t in self.golden.completed}
        got = {t.job_id for t in self.recovered.completed}
        return sorted(gold - got)

    @property
    def double_admitted(self) -> list[str]:
        """Jobs that produced completion totals more than once."""
        seen: dict[str, int] = {}
        for t in self.recovered.completed:
            seen[t.job_id] = seen.get(t.job_id, 0) + 1
        return sorted(j for j, n in seen.items() if n > 1)

    @property
    def convergence_time(self) -> float | None:
        """Seconds after restart until the recovered trace re-converges.

        Convergence = the recovered run's measured power staying within
        ``convergence_tol``·target of the golden run's for
        ``convergence_window`` consecutive samples.  ``None`` = never.
        """
        gold, rec = self.golden.power_trace, self.recovered.power_trace
        n = min(len(gold), len(rec))
        if n == 0:
            return None
        mask = np.abs(rec[:n, 2] - gold[:n, 2]) <= self.convergence_tol * self.target_power
        start = np.searchsorted(rec[:n, 0], self.restart_time)
        window = self.convergence_window
        for i in range(start, n - window + 1):
            if mask[i : i + window].all():
                return float(rec[i, 0] - self.restart_time)
        return None


def run_headnode_recovery(
    *,
    duration: float = 900.0,
    seed: int = 1,
    target_power: float = 16 * 170.0,
    num_nodes: int = 16,
    crash_time: float = 300.0,
    down_for: float = 60.0,
    checkpoint_dir: str | None = None,
    checkpoint_period: float = 30.0,
    recovery_timeout: float = 30.0,
) -> HeadNodeRecoveryResult:
    """Crash the head node mid-run and score the recovery against a golden run.

    Both runs share the seed, schedule, and static target; only the crash
    differs.  The golden run also checkpoints (into a sibling directory), so
    any overhead of persistence is present on both sides of the comparison.
    """
    base = Path(checkpoint_dir) if checkpoint_dir is not None else Path(
        tempfile.mkdtemp(prefix="anor-headnode-")
    )
    max_time = duration + 7200.0
    golden_sys = _build_static_system(
        duration=duration, seed=seed, target_power=target_power,
        num_nodes=num_nodes, checkpoint_dir=str(base / "golden"),
        checkpoint_period=checkpoint_period, recovery_timeout=recovery_timeout,
        fault_schedule=None,
    )
    golden, _ = _drive(golden_sys, max_time=max_time)
    recovered_sys = _build_static_system(
        duration=duration, seed=seed, target_power=target_power,
        num_nodes=num_nodes, checkpoint_dir=str(base / "recovered"),
        checkpoint_period=checkpoint_period, recovery_timeout=recovery_timeout,
        fault_schedule=FaultSchedule(
            [HeadNodeCrash(time=crash_time, down_for=down_for)]
        ),
    )
    recovered, rounds = _drive(recovered_sys, max_time=max_time)
    merges = (
        recovered_sys.manager.recovery_merges
        if recovered_sys.manager is not None
        else 0
    )
    checkpoints = (
        recovered_sys.durable.checkpoints_written
        if recovered_sys.durable is not None
        else 0
    )
    return HeadNodeRecoveryResult(
        golden=golden,
        recovered=recovered,
        target_power=target_power,
        crash_time=crash_time,
        down_for=down_for,
        recovery_merges=merges,
        checkpoints_written=checkpoints,
        rounds=rounds,
        orphaned=list(recovered.orphaned),
        incident_counts=dict(recovered_sys.telemetry.incident_counts),
    )


def format_headnode_table(res: HeadNodeRecoveryResult) -> str:
    conv = res.convergence_time
    lines = [
        f"head-node outage               : t={res.crash_time:.0f}s for {res.down_for:.0f}s",
        f"checkpoints written            : {res.checkpoints_written}",
        f"budget rounds over ceiling     : {res.budget_violations}",
        f"jobs completed golden/recovered: "
        f"{len(res.golden.completed)}/{len(res.recovered.completed)}",
        f"jobs lost to the outage        : {len(res.lost_jobs)}"
        + (f"  {res.lost_jobs}" if res.lost_jobs else ""),
        f"double-admitted jobs           : {len(res.double_admitted)}",
        f"live jobs reconciled (re-HELLO): {res.recovery_merges}",
        f"orphans after recovery window  : {len(res.orphaned)}"
        + (f"  {res.orphaned}" if res.orphaned else ""),
        "trace re-convergence           : "
        + (f"{conv:.0f}s after restart" if conv is not None else "NEVER"),
        "recovery log:",
    ]
    lines.extend(f"  {line}" for line in res.recovered.recovery_log)
    if res.incident_counts:
        lines.append("incident summary:")
        lines.extend(summarize_incidents(res.incident_counts))
    return "\n".join(lines)


def format_table(res: ResilienceResult) -> str:
    lines = [
        f"healthy tracking error 90th pct: {100 * res.healthy_error90:5.1f}%",
        f"faulted tracking error 90th pct: {100 * res.faulted_error90:5.1f}%"
        f"  ({res.degradation_ratio:.2f}x healthy, bound 1.50x)",
        f"jobs completed healthy/faulted : "
        f"{len(res.healthy.result.completed)}/{len(res.faulted.result.completed)}",
        f"jobs requeued by crashes       : {len(res.requeued)}"
        f"  (all finished: {'yes' if res.requeued_completed else 'NO'})",
        f"ghost job records at drain     : {res.ghost_jobs}",
        f"fault windows all closed       : "
        f"{'yes' if res.injector_quiescent else 'NO'}",
        "fault event log:",
    ]
    lines.extend(f"  {line}" for line in res.fault_log)
    if res.incident_counts:
        lines.append("incident summary:")
        lines.extend(summarize_incidents(res.incident_counts))
    if res.decision_counts:
        lines.append("control-plane decisions (faulted run):")
        width = max(len(k) for k in res.decision_counts)
        lines.extend(
            f"  {label:<{width}} : {int(value)}"
            for label, value in res.decision_counts.items()
        )
    return "\n".join(lines)


# ------------------------------------------------------------ partition drill


@dataclass
class PartitionDrillResult:
    """Golden-vs-partitioned comparison of one head↔endpoint partition.

    Both runs share the seed, schedule, stepped target, and lease
    configuration; only the :class:`~repro.faults.NetworkPartition` differs.
    The target steps *down* shortly after the partition opens — the dangerous
    direction: every endpoint holds a cap sized for the old, higher target
    and the head cannot deliver the lower one.  The drill's headline claim is
    the dead-man bound: the cluster may sit above the enforceable limit only
    for a stretch bounded by ``lease_ttl + lease_ramp (+ slack)``.
    """

    golden: AnorResult
    partitioned: AnorResult
    high_power: float
    low_power: float
    step_time: float
    partition_time: float
    partition_duration: float
    lease_ttl: float
    lease_ramp: float
    floor_power: float  # enforceable cluster floor (all nodes at p_min)
    slack: float = 30.0  # control-period + epoch granularity allowance
    tol: float = 0.10
    injector_quiescent: bool = True
    convergence_window: int = 30
    incident_counts: dict[str, int] = field(default_factory=dict)
    partition_events: list = field(default_factory=list)

    @property
    def heal_time(self) -> float:
        return self.partition_time + self.partition_duration

    @property
    def overshoot_bound(self) -> float:
        """The fail-safe guarantee: max tolerated over-limit stretch."""
        return self.lease_ttl + self.lease_ramp + self.slack

    def _longest_over_limit(self, trace: np.ndarray) -> float:
        """Longest contiguous stretch past ``partition_time`` with measured
        power above ``max(target, floor)·(1+tol)``, in seconds."""
        if not len(trace):
            return 0.0
        t, target, measured = trace[:, 0], trace[:, 1], trace[:, 2]
        limit = np.maximum(target, self.floor_power) * (1.0 + self.tol)
        over = (measured > limit) & (t >= self.partition_time)
        best, start = 0.0, None
        for i in range(len(t)):
            if over[i]:
                if start is None:
                    start = t[i]
                best = max(best, float(t[i] - start))
            else:
                start = None
        return best

    @property
    def overshoot_seconds(self) -> float:
        return self._longest_over_limit(self.partitioned.power_trace)

    @property
    def golden_overshoot_seconds(self) -> float:
        return self._longest_over_limit(self.golden.power_trace)

    @property
    def degraded_endpoints(self) -> int:
        """Lease expiries observed (degraded-autonomy incidents)."""
        return self.incident_counts.get("degraded-autonomy-start", 0)

    @property
    def partitions_detected(self) -> int:
        return sum(1 for f in self.partition_events if isinstance(f, PartitionStart))

    @property
    def partitions_healed(self) -> int:
        return sum(1 for f in self.partition_events if isinstance(f, PartitionEnd))

    @property
    def lost_jobs(self) -> list[str]:
        """Jobs the golden run completed that the partitioned run lost."""
        gold = {t.job_id for t in self.golden.completed}
        got = {t.job_id for t in self.partitioned.completed}
        return sorted(gold - got)

    @property
    def convergence_time(self) -> float | None:
        """Seconds after the heal until the partitioned trace re-converges.

        Convergence = measured power staying within ``tol``·low_power of the
        golden run's for ``convergence_window`` consecutive samples.
        """
        gold, part = self.golden.power_trace, self.partitioned.power_trace
        n = min(len(gold), len(part))
        if n == 0:
            return None
        mask = np.abs(part[:n, 2] - gold[:n, 2]) <= self.tol * self.low_power
        start = int(np.searchsorted(part[:n, 0], self.heal_time))
        window = self.convergence_window
        for i in range(start, n - window + 1):
            if mask[i : i + window].all():
                return float(part[i, 0] - self.heal_time)
        return None


def run_partition_drill(
    *,
    duration: float = 900.0,
    seed: int = 7,
    num_nodes: int = 16,
    high_power: float | None = None,
    low_power: float | None = None,
    partition_time: float = 300.0,
    partition_duration: float = 240.0,
    step_into: float = 10.0,
    lease_ttl: float = 30.0,
    lease_ramp: float = 60.0,
    slack: float = 30.0,
    tol: float = 0.10,
    breaker_margin: float | None = None,
) -> PartitionDrillResult:
    """Partition the head from every endpoint mid-run and score the fail-safe.

    The target steps from ``high_power`` down to ``low_power`` at
    ``partition_time + step_into`` — inside the partition window, while the
    endpoints still hold valid leases sized for the high target.  Leases then
    expire, caps decay to the floor, the partition heals, and tracking must
    re-converge to the golden run.
    """
    if high_power is None:
        high_power = num_nodes * 220.0
    if low_power is None:
        low_power = num_nodes * 175.0
    step_time = partition_time + step_into
    if not partition_time < step_time < partition_time + partition_duration:
        raise ValueError(
            f"target step at t={step_time} must fall inside the partition "
            f"window [{partition_time}, {partition_time + partition_duration}]"
        )
    target = SteppedTarget([0.0, step_time], [high_power, low_power])
    common = dict(
        duration=duration,
        seed=seed,
        target_power=high_power,
        num_nodes=num_nodes,
        checkpoint_dir=None,
        checkpoint_period=30.0,
        recovery_timeout=30.0,
        target_source=target,
        lease_ttl=lease_ttl,
        lease_ramp_seconds=lease_ramp,
        reliable_messaging=True,
        breaker_margin=breaker_margin,
    )
    max_time = duration + 7200.0
    golden_sys = _build_static_system(fault_schedule=None, **common)
    golden, _ = _drive(golden_sys, max_time=max_time)
    part_sys = _build_static_system(
        fault_schedule=FaultSchedule(
            [NetworkPartition(time=partition_time, duration=partition_duration)]
        ),
        **common,
    )
    partitioned, _ = _drive(part_sys, max_time=max_time)
    quiescent = part_sys.faults.quiescent if part_sys.faults is not None else True
    return PartitionDrillResult(
        golden=golden,
        partitioned=partitioned,
        high_power=high_power,
        low_power=low_power,
        step_time=step_time,
        partition_time=partition_time,
        partition_duration=partition_duration,
        lease_ttl=lease_ttl,
        lease_ramp=lease_ramp,
        floor_power=num_nodes * P_NODE_MIN,
        slack=slack,
        tol=tol,
        injector_quiescent=quiescent,
        incident_counts=dict(part_sys.telemetry.incident_counts),
        partition_events=list(partitioned.partition_events),
    )


def format_partition_table(res: PartitionDrillResult) -> str:
    conv = res.convergence_time
    lines = [
        f"partition window               : t={res.partition_time:.0f}s "
        f"for {res.partition_duration:.0f}s (all head↔endpoint links)",
        f"target step (inside partition) : {res.high_power:.0f}W -> "
        f"{res.low_power:.0f}W at t={res.step_time:.0f}s",
        f"lease: ttl/ramp/slack          : {res.lease_ttl:.0f}s / "
        f"{res.lease_ramp:.0f}s / {res.slack:.0f}s",
        f"over-limit stretch (partition) : {res.overshoot_seconds:.0f}s "
        f"(bound {res.overshoot_bound:.0f}s, golden "
        f"{res.golden_overshoot_seconds:.0f}s)",
        f"lease expiries (degraded mode) : {res.degraded_endpoints}",
        f"partitions detected/healed     : {res.partitions_detected}/"
        f"{res.partitions_healed}",
        f"jobs completed golden/partition: "
        f"{len(res.golden.completed)}/{len(res.partitioned.completed)}",
        f"jobs lost to the partition     : {len(res.lost_jobs)}"
        + (f"  {res.lost_jobs}" if res.lost_jobs else ""),
        f"fault windows all closed       : "
        f"{'yes' if res.injector_quiescent else 'NO'}",
        "trace re-convergence           : "
        + (f"{conv:.0f}s after heal" if conv is not None else "NEVER"),
    ]
    if res.incident_counts:
        lines.append("incident summary:")
        lines.extend(summarize_incidents(res.incident_counts))
    return "\n".join(lines)


# ------------------------------------------------------------ byzantine drill


def _overshoot_stats(
    trace: np.ndarray, t0: float, t1: float
) -> tuple[float, float]:
    """(over-target energy in J, mean measured−target in W) on [t0, t1)."""
    if not len(trace):
        return 0.0, 0.0
    mask = (trace[:, 0] >= t0) & (trace[:, 0] < t1)
    t, target, measured = trace[mask, 0], trace[mask, 1], trace[mask, 2]
    if len(t) < 2:
        return 0.0, 0.0
    dt = np.diff(t, append=t[-1])
    over = np.maximum(measured - target, 0.0)
    return float(np.sum(over * dt)), float(np.mean(measured - target))


_ROGUE_KINDS = ("stuck-actuator", "byzantine-model", "meter-drift")


def _parse_rogue_victims(
    fault_log: list[str], kinds: tuple = _ROGUE_KINDS
) -> dict[str, tuple[str, float]]:
    """``job_id -> (fault kind, fire time)`` from an injector log."""
    victims: dict[str, tuple[str, float]] = {}
    for line in fault_log:
        fields = line.split()
        if not fields or not fields[0].startswith("t="):
            continue
        # The timestamp is space-padded, so "t=" and the number may split.
        rest = fields[1:] if fields[0] == "t=" else [fields[0][2:], *fields[1:]]
        if len(rest) < 3:
            continue
        when, kind, target = float(rest[0]), rest[1], rest[2]
        if kind in kinds and target.startswith("job="):
            victims.setdefault(target[len("job="):], (kind, when))
    return victims


@dataclass
class ByzantineDrillResult:
    """Golden-vs-attacked comparison of the job-tier trust boundary.

    Three runs share the seed, workload, and static target: a fault-free
    run with auditing on (false-alarm control), the attack with auditing
    on, and the same attack with auditing off (damage control group).  The
    attack wedges two actuators open (one heals mid-run) and has a third
    endpoint ship fabricated model coefficients.  The integral trim is
    zeroed in all three runs so any overshoot containment is attributable
    to the audit layer alone.
    """

    clean: AnorResult
    attacked_on: AnorResult
    attacked_off: AnorResult
    target_power: float
    heal_time: float
    healed_victim: str | None
    victims_on: dict  # job_id -> (fault kind, fire time), audit-on run
    transitions_clean: list
    transitions_on: list
    settle: float = 45.0
    detection_bound: float = 60.0  # s from fault fire to quarantine
    rehab_bound: float = 150.0  # s from actuator heal to trusted again
    attack_start: float = 240.0

    @property
    def false_quarantines_clean(self) -> list:
        return [t for t in self.transitions_clean if t.new == "quarantined"]

    @property
    def quarantined_on(self) -> dict:
        """job_id -> first quarantine time in the attacked audit-on run."""
        out: dict[str, float] = {}
        for t in self.transitions_on:
            if t.new == "quarantined" and t.job_id not in out:
                out[t.job_id] = t.time
        return out

    @property
    def collateral_quarantines(self) -> list[str]:
        return sorted(set(self.quarantined_on) - set(self.victims_on))

    @property
    def detection_latencies(self) -> dict:
        """job_id -> seconds from fault fire to first quarantine."""
        q = self.quarantined_on
        return {
            job_id: q[job_id] - fired
            for job_id, (_, fired) in self.victims_on.items()
            if job_id in q
        }

    @property
    def missed_victims(self) -> list[str]:
        return sorted(set(self.victims_on) - set(self.quarantined_on))

    @property
    def last_quarantine(self) -> float:
        q = self.quarantined_on
        return max(q.values()) if q else self.attack_start

    def _segments(self, result: AnorResult) -> tuple[float, float, float, float]:
        """(detect kJ, detect mean W, settled kJ, settled mean W)."""
        split = self.last_quarantine + self.settle
        end = float(result.power_trace[-1, 0]) if len(result.power_trace) else split
        e0, m0 = _overshoot_stats(result.power_trace, self.attack_start, split)
        e1, m1 = _overshoot_stats(result.power_trace, split, end)
        return e0 / 1000.0, m0, e1 / 1000.0, m1

    @property
    def on_detect_energy(self) -> float:
        return self._segments(self.attacked_on)[0]

    @property
    def on_settled_mean(self) -> float:
        return self._segments(self.attacked_on)[3]

    @property
    def off_detect_mean(self) -> float:
        return self._segments(self.attacked_off)[1]

    @property
    def on_total_energy(self) -> float:
        seg = self._segments(self.attacked_on)
        return seg[0] + seg[2]

    @property
    def off_total_energy(self) -> float:
        seg = self._segments(self.attacked_off)
        return seg[0] + seg[2]

    @property
    def rehabilitated(self) -> bool:
        """The healed actuator's job re-earned trust within the bound."""
        if self.healed_victim is None:
            return False
        for t in self.transitions_on:
            if (
                t.job_id == self.healed_victim
                and t.new == "trusted"
                and self.heal_time <= t.time <= self.heal_time + self.rehab_bound
            ):
                return True
        return False

    @property
    def unhealed_still_quarantined(self) -> bool:
        """Victims whose fault never heals must never leave quarantine.

        Checked from the transition log, not drain-time state: the auditor
        forgets a job once it completes, and a wedged-open victim runs at
        full speed, so it usually finishes long before the run drains.
        """
        healed = {self.healed_victim}
        for job_id in self.victims_on:
            if job_id in healed:
                continue
            last = [t for t in self.transitions_on if t.job_id == job_id]
            if not last or last[-1].new != "quarantined":
                return False
        return True


def run_byzantine_drill(
    *,
    duration: float = 900.0,
    seed: int = 3,
    num_nodes: int = 16,
    target_power: float | None = None,
    attack_time: float = 240.0,
    stuck_heal_after: float = 60.0,
) -> ByzantineDrillResult:
    """Score the cap-compliance auditor against rogue job-tier endpoints.

    The attack: two :class:`~repro.faults.StuckActuator` events five seconds
    apart (the first permanent, the second healing ``stuck_heal_after``
    seconds later) and one flat-mode :class:`~repro.faults.ByzantineModel`
    sixty seconds in.  Victims are injector-chosen (most remaining work),
    so the same drill exercises multi-job quarantine, headroom
    redistribution, and the rehabilitation path.
    """
    if target_power is None:
        target_power = num_nodes * 175.0
    common = dict(
        duration=duration,
        seed=seed,
        target_power=target_power,
        num_nodes=num_nodes,
        checkpoint_dir=None,
        checkpoint_period=30.0,
        recovery_timeout=60.0,
        correction_gain=0.0,
    )
    max_time = duration + 7200.0

    def attack() -> FaultSchedule:
        return FaultSchedule(
            [
                StuckActuator(time=attack_time),
                StuckActuator(time=attack_time + 5.0, duration=stuck_heal_after),
                ByzantineModel(time=attack_time + 60.0, mode="flat"),
            ]
        )

    clean_sys = _build_static_system(
        fault_schedule=None, audit_enabled=True, **common
    )
    clean, _ = _drive(clean_sys, max_time=max_time)
    transitions_clean = list(clean_sys.manager.auditor.transitions)

    on_sys = _build_static_system(
        fault_schedule=attack(), audit_enabled=True, **common
    )
    attacked_on, _ = _drive(on_sys, max_time=max_time)
    transitions_on = list(on_sys.manager.auditor.transitions)
    victims_on = _parse_rogue_victims(attacked_on.fault_log)
    healed_victim = None
    for line in attacked_on.fault_log:
        if "stuck-actuator" in line and f"duration={stuck_heal_after:.1f}" in line:
            healed_victim = line.split("job=")[1].split()[0]

    off_sys = _build_static_system(
        fault_schedule=attack(), audit_enabled=False, **common
    )
    attacked_off, _ = _drive(off_sys, max_time=max_time)

    return ByzantineDrillResult(
        clean=clean,
        attacked_on=attacked_on,
        attacked_off=attacked_off,
        target_power=target_power,
        heal_time=attack_time + 5.0 + stuck_heal_after,
        healed_victim=healed_victim,
        victims_on=victims_on,
        transitions_clean=transitions_clean,
        transitions_on=transitions_on,
        attack_start=attack_time,
    )


def format_byzantine_table(res: ByzantineDrillResult) -> str:
    latencies = res.detection_latencies
    lines = [
        f"target (static, trim zeroed)   : {res.target_power:.0f}W",
        f"victims (audit-on run)         : "
        + ", ".join(
            f"{jid} ({kind} @t={fired:.0f}s)"
            for jid, (kind, fired) in sorted(res.victims_on.items())
        ),
        f"false quarantines (clean run)  : {len(res.false_quarantines_clean)}",
        f"victims quarantined            : "
        f"{len(latencies)}/{len(res.victims_on)}"
        + (f"  missed: {res.missed_victims}" if res.missed_victims else ""),
        "detection latency              : "
        + ", ".join(
            f"{jid}: {lat:.0f}s" for jid, lat in sorted(latencies.items())
        ),
        f"collateral quarantines         : {len(res.collateral_quarantines)}"
        + (f"  {res.collateral_quarantines}" if res.collateral_quarantines else ""),
        f"over-target energy on/off      : {res.on_total_energy:.1f} / "
        f"{res.off_total_energy:.1f} kJ after the attack",
        f"audit-off mean excess (detect) : {res.off_detect_mean:+.0f}W",
        f"audit-on mean excess (settled) : {res.on_settled_mean:+.0f}W",
        f"healed actuator rehabilitated  : "
        f"{'yes' if res.rehabilitated else 'NO'}"
        + (
            f"  ({res.healed_victim}, heal t={res.heal_time:.0f}s)"
            if res.healed_victim
            else ""
        ),
        f"unhealed victims still held    : "
        f"{'yes' if res.unhealed_still_quarantined else 'NO'}",
        "trust transitions (attacked, audit on):",
    ]
    lines.extend(
        f"  t={t.time:7.1f} {t.job_id}: {t.old} -> {t.new} ({t.reason})"
        for t in res.transitions_on
    )
    return "\n".join(lines)


# --------------------------------------------------------------- chaos soak


#: Calm-window invariant bounds (see :func:`run_chaos_soak`).  Single-sample
#: overshoot spikes are normal even fault-free (a freshly dispatched job's
#: setup phase draws demand power before its first cap lands), so the bound
#: is on a rolling mean: fault-free runs stay under ~3 % of target on a 60 s
#: mean, while a containment failure holds a victim's excess indefinitely.
_SOAK_SETTLE = 90.0
_SOAK_ROLL = 60  # samples (≈ seconds) in the rolling overshoot mean
_SOAK_SUSTAINED_EXCESS = 0.05  # fraction of target on the rolling mean
_SOAK_PLAN_SLACK = 0.1  # W of float slack on planned ≤ ceiling

#: Fault kinds whose target job may legitimately end up quarantined during a
#: soak.  Beyond the three rogue-endpoint faults, a crashed endpoint goes
#: silent (its stale self-report diverges from metered truth — quarantining
#: it at metered power is the designed response, not collateral damage) and
#: a corrupt status can ship a fabricated model.
_SOAK_VICTIM_KINDS = _ROGUE_KINDS + ("endpoint-crash", "corrupt-status")


@dataclass
class SoakEpisode:
    """One seeded episode of a chaos soak."""

    seed: int
    duration: float
    num_faults: int
    completed: int
    violations: list = field(default_factory=list)
    quarantines: int = 0
    transitions: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations


@dataclass
class ChaosSoakResult:
    """Outcome of a wall-clock-budgeted randomized fault soak.

    Each episode drives a fresh seeded system under a
    :meth:`~repro.faults.FaultSchedule.random` mix (rogue endpoints, node
    and endpoint crashes, corrupt statuses, meter outages — all finite
    duration) with auditing on, and checks online invariants:

    * **budget conservation** — every budget round's planned power
      (idle + reserved + allocated) stays within its ceiling;
    * **bounded overshoot** — outside scheduled fault windows (plus a
      settle margin), measured facility power stays near target;
    * **drain** — every submitted job completes; no ghost records;
    * **no collateral quarantine** — only injector-targeted jobs are ever
      quarantined.
    """

    episodes: list
    wall_seconds: float
    budget_seconds: float

    @property
    def violations(self) -> list:
        return [v for ep in self.episodes for v in ep.violations]

    @property
    def total_faults(self) -> int:
        return sum(ep.num_faults for ep in self.episodes)

    @property
    def all_clean(self) -> bool:
        return bool(self.episodes) and all(ep.clean for ep in self.episodes)


def _fault_windows(schedule: FaultSchedule, end: float) -> list:
    """(start, stop) spans during/after which the system may be off target."""
    windows = []
    for event in schedule:
        span = getattr(event, "duration", None)
        if span is None:
            span = getattr(event, "down_for", 0.0)
        stop = event.time + span if math.isfinite(span) else end
        windows.append((event.time, min(stop + _SOAK_SETTLE, end)))
    return windows


def _check_episode_invariants(
    *,
    seed: int,
    result: AnorResult,
    rounds: np.ndarray,
    schedule: FaultSchedule,
    target_power: float,
    ghosts: int,
    quarantined: set,
    victims: set,
) -> list:
    violations = []
    for when, ceiling, planned in rounds:
        if planned > ceiling + _SOAK_PLAN_SLACK:
            violations.append(
                f"seed={seed} t={when:.1f} budget-conservation: "
                f"planned {planned:.1f}W > ceiling {ceiling:.1f}W"
            )
    if result.unstarted_jobs:
        violations.append(
            f"seed={seed} drain: {result.unstarted_jobs} jobs never started"
        )
    if ghosts:
        violations.append(f"seed={seed} drain: {ghosts} ghost records")
    collateral = quarantined - victims
    if collateral:
        violations.append(
            f"seed={seed} collateral quarantine: {sorted(collateral)}"
        )
    trace = result.power_trace
    if len(trace) >= _SOAK_ROLL:
        end = float(trace[-1, 0])
        calm = np.isfinite(trace[:, 2])
        for start, stop in _fault_windows(schedule, end):
            calm &= ~((trace[:, 0] >= start) & (trace[:, 0] < stop))
        excess = np.where(calm, trace[:, 2] - trace[:, 1], 0.0)
        kernel = np.ones(_SOAK_ROLL)
        rolled = np.convolve(excess, kernel / _SOAK_ROLL, mode="valid")
        # A rolling window counts only if every sample in it is calm.
        all_calm = np.convolve(calm.astype(float), kernel, mode="valid") == (
            _SOAK_ROLL
        )
        if all_calm.any():
            worst = int(np.argmax(np.where(all_calm, rolled, -np.inf)))
            if rolled[worst] > _SOAK_SUSTAINED_EXCESS * target_power:
                violations.append(
                    f"seed={seed} t={trace[worst, 0]:.1f} sustained "
                    f"calm-window overshoot {rolled[worst]:.1f}W "
                    f"({_SOAK_ROLL}s mean)"
                )
    return violations


def run_chaos_soak(
    *,
    seconds: float = 60.0,
    base_seed: int = 7,
    episode_duration: float = 600.0,
    num_nodes: int = 16,
    target_power: float | None = None,
    max_episodes: int = 1000,
) -> ChaosSoakResult:
    """Soak the trust boundary under randomized faults for ``seconds`` of
    wall-clock time (always at least one episode)."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    if episode_duration <= 0:
        raise ValueError(
            f"episode_duration must be positive, got {episode_duration}"
        )
    if target_power is None:
        target_power = num_nodes * 180.0
    start_wall = time.monotonic()
    episodes: list[SoakEpisode] = []
    for i in range(max_episodes):
        if episodes and time.monotonic() - start_wall >= seconds:
            break
        seed = base_seed + i
        schedule = FaultSchedule.random(
            episode_duration,
            seed=seed,
            num_nodes=num_nodes,
            node_crash_rate=1.0 / 600.0,
            endpoint_crash_rate=1.0 / 600.0,
            link_burst_rate=1.0 / 600.0,
            meter_outage_rate=1.0 / 600.0,
            corrupt_status_rate=1.0 / 600.0,
            byzantine_rate=1.0 / 300.0,
            stuck_actuator_rate=1.0 / 300.0,
            meter_drift_rate=1.0 / 300.0,
            node_down_time=120.0,
            rogue_duration=120.0,
        )
        system = _build_static_system(
            duration=episode_duration,
            seed=seed,
            target_power=target_power,
            num_nodes=num_nodes,
            checkpoint_dir=None,
            checkpoint_period=30.0,
            recovery_timeout=60.0,
            fault_schedule=schedule,
            audit_enabled=True,
        )
        result, rounds = _drive(system, max_time=episode_duration + 7200.0)
        # Settle before counting ghosts: goodbyes are still in flight at
        # drain and silently-dead records need dead_job_timeout to pass.
        for _ in range(int(system.config.dead_job_timeout) + 10):
            system.step()
        auditor = system.manager.auditor
        quarantined = {
            t.job_id for t in auditor.transitions if t.new == "quarantined"
        }
        victims = set(
            _parse_rogue_victims(result.fault_log, kinds=_SOAK_VICTIM_KINDS)
        )
        violations = _check_episode_invariants(
            seed=seed,
            result=result,
            rounds=rounds,
            schedule=schedule,
            target_power=target_power,
            ghosts=len(system.manager.jobs),
            quarantined=quarantined,
            victims=victims,
        )
        episodes.append(
            SoakEpisode(
                seed=seed,
                duration=episode_duration,
                num_faults=len(schedule),
                completed=len(result.completed),
                violations=violations,
                quarantines=len(quarantined),
                transitions=len(auditor.transitions),
            )
        )
    return ChaosSoakResult(
        episodes=episodes,
        wall_seconds=time.monotonic() - start_wall,
        budget_seconds=seconds,
    )


def format_soak_table(res: ChaosSoakResult) -> str:
    lines = [
        f"episodes                       : {len(res.episodes)} "
        f"({res.wall_seconds:.0f}s wall, budget {res.budget_seconds:.0f}s)",
        f"faults injected                : {res.total_faults}",
        f"quarantines                    : "
        f"{sum(ep.quarantines for ep in res.episodes)}",
        f"invariant violations           : {len(res.violations)}",
    ]
    for ep in res.episodes:
        lines.append(
            f"  seed={ep.seed}: faults={ep.num_faults} "
            f"completed={ep.completed} quarantines={ep.quarantines} "
            f"{'clean' if ep.clean else 'VIOLATIONS=' + str(len(ep.violations))}"
        )
    lines.extend(f"  {v}" for v in res.violations)
    return "\n".join(lines)


# --------------------------------------------------------------- forecast


@dataclass
class ForecastDrillResult:
    """Reactive vs predictive vs adversarial planning on the Fig. 9 target.

    Three runs of the same workload (seed, schedule, file-backed target):

    * **reactive** — planning off: the seed control plane;
    * **predictive** — schedule forecaster (exact breakpoints), envelope
      active from round one;
    * **adversarial** — inverted-ramp forecaster, deliberately wrong, to
      prove the envelope keeps planned draw inside the reactive bound and
      trips fallback within the configured error window.
    """

    reactive: AnorResult
    predictive: AnorResult
    adversarial: AnorResult
    # per-round accounting rows: (time, ceiling, planned) from _drive
    reactive_rounds: np.ndarray
    predictive_rounds: np.ndarray
    adversarial_rounds: np.ndarray
    reactive_rewrites: int
    predictive_rewrites: int
    adversarial_rewrites: int
    predictive_fallbacks: int
    adversarial_fallbacks: int
    predictive_mae: float
    adversarial_mae: float
    predictive_warm_hits: int
    predictive_held_caps: int
    adversarial_fallback_time: float | None
    duration: float
    warmup: float
    reserve: float
    manager_period: float
    error_bound_watts: float
    error_window: int

    def _errors(self, result: AnorResult) -> np.ndarray:
        # Compare tracking only over the scheduled window: past ``duration``
        # the three runs are all draining a tail of long jobs and the target
        # no longer exercises the planner.
        trace = result.power_trace
        trace = trace[trace[:, 0] <= self.duration]
        return tracking_error_series(
            trace, self.reserve, t_start=self.warmup, smooth_samples=4
        )

    @property
    def reactive_error90(self) -> float:
        return float(np.percentile(self._errors(self.reactive), 90))

    @property
    def predictive_error90(self) -> float:
        return float(np.percentile(self._errors(self.predictive), 90))

    @property
    def adversarial_error90(self) -> float:
        return float(np.percentile(self._errors(self.adversarial), 90))

    @property
    def tracking_ratio(self) -> float:
        """Predictive / reactive 90th-pct tracking error; < 1 is a win."""
        reactive = self.reactive_error90
        return self.predictive_error90 / reactive if reactive > 0 else math.inf

    @staticmethod
    def _violations(rounds: np.ndarray) -> int:
        if rounds.size == 0:
            return 0
        return int(np.sum(rounds[:, 2] > rounds[:, 1] + _SOAK_PLAN_SLACK))

    @property
    def predictive_violations(self) -> int:
        """Rounds where the predictive plan out-spent the budget ceiling."""
        return self._violations(self.predictive_rounds)

    @property
    def adversarial_violations(self) -> int:
        """Rounds where the *wrong* forecast out-spent the budget ceiling."""
        return self._violations(self.adversarial_rounds)

    @property
    def fallback_latency_bound(self) -> float:
        """How quickly the envelope must trip on a persistently wrong
        forecaster: enough rounds to arm the trip gate plus one full error
        window, in seconds."""
        return (self.error_window + 4) * self.manager_period

    @property
    def fallback_latency(self) -> float | None:
        """Seconds from the first scored round to the adversarial trip."""
        if self.adversarial_fallback_time is None:
            return None
        if self.adversarial_rounds.size == 0:
            return None
        return float(self.adversarial_fallback_time - self.adversarial_rounds[0, 0])


def run_forecast_drill(
    *,
    duration: float = 900.0,
    seed: int = 0,
    warmup: float = 120.0,
    manager_period: float = 4.0,
    horizon_rounds: int = 8,
    hysteresis_watts: float = 6.0,
    error_bound_watts: float = 100.0,
    error_window: int = 16,
) -> ForecastDrillResult:
    """Scorecard the predictive planner against the reactive seed on Fig. 9.

    The Fig. 9 regulation signal is materialised through
    :func:`~repro.core.targets.save_target_file` into a genuine file-backed
    :class:`~repro.core.targets.SteppedTarget`, so the schedule forecaster
    consumes *exact* future breakpoints via ``window()`` — the deployment
    shape the paper describes (the manager "periodically reads cluster power
    targets from a file").  The manager runs at the target's own 4 s cadence;
    the reactive gate anchors 1 s off the target grid (first poll fires at
    t=1), so every target step is seen a second late — the lag the plan
    instants eliminate.
    """
    signal = BoundedRandomWalkSignal(
        duration * 2, step=manager_period, seed=seed * 104729 + 7
    )
    regulation = RegulationTarget(
        DEFAULT_AVERAGE_POWER, DEFAULT_RESERVE, signal,
        update_period=manager_period,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fig9_targets.csv"
        save_target_file(regulation, path, duration=duration * 2, step=manager_period)
        stepped = load_target_file(path)

    def run_one(
        plan_enabled: bool, forecaster: str
    ) -> tuple[AnorResult, np.ndarray, AnorSystem]:
        cfg = AnorConfig(
            num_nodes=16,
            seed=seed,
            manager_period=manager_period,
            telemetry_enabled=True,
            plan_enabled=plan_enabled,
            plan_forecaster=forecaster,
            plan_horizon_rounds=horizon_rounds,
            plan_hysteresis_watts=hysteresis_watts,
            plan_error_bound_watts=error_bound_watts,
            plan_error_window=error_window,
            # Drills start active: shadow-mode promotion is covered by unit
            # tests, and the adversarial arm must *reach* active to prove
            # fallback engages.
            plan_shadow_rounds=0,
        )
        system = build_demand_response_system(
            duration=duration, seed=seed, target_source=stepped, config=cfg
        )
        result, rounds = _drive(system, max_time=duration * 4)
        return result, rounds, system

    reactive_res, reactive_rounds, reactive_sys = run_one(False, "auto")
    predictive_res, predictive_rounds, predictive_sys = run_one(True, "auto")
    adversarial_res, adversarial_rounds, adversarial_sys = run_one(True, "adversarial")
    predictive_planner = predictive_sys.manager.planner
    adversarial_planner = adversarial_sys.manager.planner
    return ForecastDrillResult(
        reactive=reactive_res,
        predictive=predictive_res,
        adversarial=adversarial_res,
        reactive_rounds=reactive_rounds,
        predictive_rounds=predictive_rounds,
        adversarial_rounds=adversarial_rounds,
        reactive_rewrites=reactive_sys.manager.cap_rewrites,
        predictive_rewrites=predictive_sys.manager.cap_rewrites,
        adversarial_rewrites=adversarial_sys.manager.cap_rewrites,
        predictive_fallbacks=predictive_planner.envelope.fallbacks,
        adversarial_fallbacks=adversarial_planner.envelope.fallbacks,
        predictive_mae=predictive_planner.forecaster.mae,
        adversarial_mae=adversarial_planner.forecaster.mae,
        predictive_warm_hits=predictive_planner.warm_hits,
        predictive_held_caps=predictive_planner.hysteresis_holds,
        adversarial_fallback_time=adversarial_planner.envelope.first_fallback_time(),
        duration=duration,
        warmup=warmup,
        reserve=DEFAULT_RESERVE,
        manager_period=manager_period,
        error_bound_watts=error_bound_watts,
        error_window=error_window,
    )


def format_forecast_table(res: ForecastDrillResult) -> str:
    latency = res.fallback_latency
    lines = [
        f"tracking error 90th pct : reactive {100 * res.reactive_error90:5.1f}%  "
        f"predictive {100 * res.predictive_error90:5.1f}%  "
        f"adversarial {100 * res.adversarial_error90:5.1f}%",
        f"tracking ratio          : {res.tracking_ratio:.3f} (predictive/reactive, <1 is a win)",
        f"cap rewrites            : reactive {res.reactive_rewrites}  "
        f"predictive {res.predictive_rewrites}  "
        f"adversarial {res.adversarial_rewrites}",
        f"budget-ceiling breaches : predictive {res.predictive_violations}  "
        f"adversarial {res.adversarial_violations}",
        f"forecast MAE            : predictive {res.predictive_mae:.1f}W  "
        f"adversarial {res.adversarial_mae:.1f}W (bound {res.error_bound_watts:.0f}W)",
        f"plan warm hits          : {res.predictive_warm_hits}  "
        f"(hysteresis held {res.predictive_held_caps} caps)",
        f"fallbacks               : predictive {res.predictive_fallbacks}  "
        f"adversarial {res.adversarial_fallbacks}"
        + (
            f" (first at t={res.adversarial_fallback_time:.0f}s, "
            f"latency {latency:.0f}s ≤ bound {res.fallback_latency_bound:.0f}s)"
            if res.adversarial_fallback_time is not None and latency is not None
            else ""
        ),
        f"jobs completed          : reactive {len(res.reactive.completed)}  "
        f"predictive {len(res.predictive.completed)}  "
        f"adversarial {len(res.adversarial.completed)}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------- shed drill


#: Shed-class assignment for the long-running mix: one third of the types in
#: each class, so every severity level has work to act on.
_SHED_CLASS_MAP = {
    "cg": "preemptible",
    "mg": "preemptible",
    "bt": "checkpointable",
    "lu": "checkpointable",
    "ft": "protected",
    "sp": "protected",
}


def _parse_shed_actions(events) -> list[tuple[float, str, str]]:
    """``(time, job_id, action)`` rows from a manager's event log.

    The manager records every queued preempt/kill as
    ``t=<when> <job>: shed <action> (severity=<level>)``.
    """
    actions: list[tuple[float, str, str]] = []
    for line in events:
        fields = line.split()
        if len(fields) < 4 or not fields[0].startswith("t="):
            continue
        if fields[2] != "shed" or fields[3] not in ("preempt", "kill"):
            continue
        when = float(fields[0][len("t="):])
        actions.append((when, fields[1].rstrip(":"), fields[3]))
    return actions


def _drive_shed(
    system: AnorSystem, *, max_time: float
) -> tuple[AnorResult, np.ndarray]:
    """Run a shed-enabled system to drain, sampling the ladder per round.

    Returns ``(result, shed_rows)`` where shed_rows columns are (time,
    severity value, recovery ceiling in W) — the raw material for the
    ramp-rate and no-flapping claims.  Rows with an infinite ceiling (ladder
    not yet fed) are skipped.
    """
    rows: list[tuple[float, float, float]] = []
    last_time = None
    while (
        system._pending or system._queue or system.cluster.running
    ) and system.cluster.clock.now < max_time:
        system.step()
        mgr = system.manager
        rnd = mgr.last_round if mgr is not None else None
        if rnd is not None and rnd.time != last_time:
            last_time = rnd.time
            shed = mgr.shed
            if shed is not None and math.isfinite(shed.ladder.ceiling):
                rows.append(
                    (rnd.time, float(SEVERITY_VALUES[shed.severity]),
                     shed.ladder.ceiling)
                )
    result = system.run(0.0)
    shed_rows = np.asarray(rows) if rows else np.empty((0, 3))
    return result, shed_rows


@dataclass
class ShedDrillResult:
    """Golden-vs-incident comparison of the graceful-degradation ladder.

    Both runs share the seed, workload, static target, and shed
    configuration; only the facility incidents differ.  The incident arm
    takes three staggered feed events — a :class:`~repro.faults.ThermalDerate`
    (brownout-1), a :class:`~repro.faults.FeederLoss` (brownout-2), and a
    :class:`~repro.faults.DemandResponseEmergency` deep enough for blackstart
    — so every rung of the ladder fires and recovers in one run.
    """

    golden: AnorResult
    incident: AnorResult
    target_power: float
    ramp_watts: float
    manager_period: float
    num_incidents: int
    job_classes: dict[str, str]  # job_id -> shed class, from the schedule
    shed_actions: list  # (time, job_id, action) rows, incident arm
    golden_actions: list
    severity_log: list  # ladder transition lines, incident arm
    golden_severity_log: list
    escalations: int
    golden_escalations: int
    preempts: int
    kills: int
    restores: int
    shed_rows: np.ndarray  # (time, severity, ceiling) per round, incident arm
    injector_quiescent: bool
    incident_counts: dict = field(default_factory=dict)
    ramp_slack_watts: float = 1.0

    @property
    def killed_jobs(self) -> list[str]:
        return sorted({j for _, j, a in self.shed_actions if a == "kill"})

    @property
    def preempted_jobs(self) -> list[str]:
        return sorted({j for _, j, a in self.shed_actions if a == "preempt"})

    @property
    def protected_jobs(self) -> list[str]:
        return sorted(
            j for j, cls in self.job_classes.items() if cls == "protected"
        )

    @property
    def protected_shed(self) -> list[str]:
        """Protected-class jobs that were ever preempted or killed (must be
        empty — the plan table makes this structurally impossible)."""
        touched = {j for _, j, _ in self.shed_actions}
        return sorted(touched & set(self.protected_jobs))

    @property
    def kill_order_violations(self) -> list[str]:
        """Killed jobs outside the preemptible class."""
        return [
            j for j in self.killed_jobs
            if self.job_classes.get(j) != "preemptible"
        ]

    @property
    def preempt_order_violations(self) -> list[str]:
        """Preempted jobs outside the preemptible/checkpointable classes."""
        return [
            j for j in self.preempted_jobs
            if self.job_classes.get(j) not in ("preemptible", "checkpointable")
        ]

    @property
    def max_ramp_step(self) -> float:
        """Largest per-round recovery-ceiling increase, normalised to one
        manager period (rounds the sampler missed widen the allowance)."""
        rows = self.shed_rows
        if len(rows) < 2:
            return 0.0
        worst = 0.0
        for i in range(1, len(rows)):
            gain = rows[i, 2] - rows[i - 1, 2]
            if gain <= 0:
                continue
            periods = max(
                1.0, round((rows[i, 0] - rows[i - 1, 0]) / self.manager_period)
            )
            worst = max(worst, float(gain / periods))
        return worst

    @property
    def ramp_bound(self) -> float:
        return self.ramp_watts + self.ramp_slack_watts

    @property
    def flap_bound(self) -> int:
        """Escalations beyond one per scheduled incident would be flapping."""
        return self.num_incidents + 1

    @property
    def double_shed(self) -> list[str]:
        """Jobs preempted/killed twice inside one episode (must be empty;
        re-shedding a requeued job in a *later* episode is legitimate)."""
        out = []
        seen: dict[str, float] = {}
        episode_len = 400.0  # staggered incidents are > this far apart
        for when, job_id, _ in sorted(self.shed_actions):
            if job_id in seen and when - seen[job_id] < episode_len / 2:
                out.append(job_id)
            seen[job_id] = when
        return sorted(set(out))

    @property
    def preempted_unaccounted(self) -> list[str]:
        """Preempted jobs that neither completed nor were later killed."""
        done = {t.job_id for t in self.incident.completed}
        killed = set(self.killed_jobs)
        return sorted(set(self.preempted_jobs) - done - killed)

    @property
    def protected_incomplete(self) -> list[str]:
        """Protected jobs the incident arm failed to complete."""
        done = {t.job_id for t in self.incident.completed}
        return sorted(set(self.protected_jobs) - done)

    @property
    def golden_clean(self) -> bool:
        """The golden arm must never shed: same knobs, no incidents."""
        return (
            not self.golden_actions
            and not self.golden_severity_log
            and self.golden_escalations == 0
        )

    @property
    def recovered_to_normal(self) -> bool:
        """The last severity sample is back at normal (full recovery)."""
        return bool(len(self.shed_rows)) and self.shed_rows[-1, 1] == 0.0


def run_shed_drill(
    *,
    duration: float = 900.0,
    seed: int = 11,
    num_nodes: int = 16,
    target_power: float | None = None,
    ramp_watts: float = 100.0,
) -> ShedDrillResult:
    """Walk the degradation ladder through all three severities and back.

    Incident arm schedule (against a static target):

    * t=180s: :class:`~repro.faults.ThermalDerate` at 15 % for 120 s —
      brownout-1, preemptible jobs capped to floor;
    * t=420s: :class:`~repro.faults.FeederLoss` at 30 % for 150 s —
      brownout-2, preemptible jobs preempted, checkpointable floored;
    * t=660s: :class:`~repro.faults.DemandResponseEmergency` at 55 % for
      120 s — blackstart, preemptible killed, checkpointable preempted,
      protected floored (never preempted or killed).

    After each window the feed returns and the budget ceiling ramps back at
    ``ramp_watts`` per manager round while severity steps down one rung per
    clear window — the asymmetric hysteresis that prevents flapping.
    """
    if target_power is None:
        target_power = num_nodes * 180.0
    incidents = [
        ThermalDerate(time=180.0, magnitude=0.15, duration=120.0),
        FeederLoss(time=420.0, magnitude=0.30, duration=150.0),
        DemandResponseEmergency(time=660.0, magnitude=0.55, duration=120.0),
    ]
    common = dict(
        duration=duration,
        seed=seed,
        target_power=target_power,
        num_nodes=num_nodes,
        checkpoint_dir=None,
        checkpoint_period=30.0,
        recovery_timeout=30.0,
        shed_enabled=True,
        shed_classes=dict(_SHED_CLASS_MAP),
        shed_ramp_watts=ramp_watts,
    )
    max_time = duration + 7200.0
    golden_sys = _build_static_system(fault_schedule=None, **common)
    golden, _ = _drive_shed(golden_sys, max_time=max_time)
    golden_shed = golden_sys.manager.shed
    golden_actions = _parse_shed_actions(golden_sys.manager.events)
    golden_severity_log = list(golden_shed.ladder.transitions)
    golden_escalations = golden_shed.ladder.escalations

    incident_sys = _build_static_system(
        fault_schedule=FaultSchedule(incidents), **common
    )
    incident, shed_rows = _drive_shed(incident_sys, max_time=max_time)
    shed = incident_sys.manager.shed
    job_classes = {
        req.job_id: _SHED_CLASS_MAP.get(req.type_name, "checkpointable")
        for req in incident_sys.schedule.requests
    }
    quiescent = (
        incident_sys.faults.quiescent if incident_sys.faults is not None else True
    )
    return ShedDrillResult(
        golden=golden,
        incident=incident,
        target_power=target_power,
        ramp_watts=ramp_watts,
        manager_period=incident_sys.config.manager_period,
        num_incidents=len(incidents),
        job_classes=job_classes,
        shed_actions=_parse_shed_actions(incident_sys.manager.events),
        golden_actions=golden_actions,
        severity_log=list(shed.ladder.transitions),
        golden_severity_log=golden_severity_log,
        escalations=shed.ladder.escalations,
        golden_escalations=golden_escalations,
        preempts=shed.preempts,
        kills=shed.kills,
        restores=shed.restores,
        shed_rows=shed_rows,
        injector_quiescent=quiescent,
        incident_counts=dict(incident_sys.telemetry.incident_counts),
    )


def format_shed_table(res: ShedDrillResult) -> str:
    by_class: dict[str, int] = {}
    for cls in res.job_classes.values():
        by_class[cls] = by_class.get(cls, 0) + 1
    lines = [
        f"target (static)                : {res.target_power:.0f}W, "
        f"{res.num_incidents} staggered facility incidents",
        f"jobs by shed class             : "
        + "  ".join(f"{c}={n}" for c, n in sorted(by_class.items())),
        f"ladder escalations             : {res.escalations} "
        f"(flap bound {res.flap_bound}; golden {res.golden_escalations})",
        f"shed actions (incident arm)    : preempts={res.preempts} "
        f"kills={res.kills} restores={res.restores}",
        f"protected jobs shed            : {len(res.protected_shed)}"
        + (f"  {res.protected_shed}" if res.protected_shed else ""),
        f"shed-order violations          : "
        f"kill={len(res.kill_order_violations)} "
        f"preempt={len(res.preempt_order_violations)}",
        f"double-shed in one episode     : {len(res.double_shed)}"
        + (f"  {res.double_shed}" if res.double_shed else ""),
        f"recovery ramp per round        : {res.max_ramp_step:.1f}W "
        f"(bound {res.ramp_bound:.1f}W)",
        f"recovered to normal            : "
        f"{'yes' if res.recovered_to_normal else 'NO'}",
        f"jobs completed golden/incident : "
        f"{len(res.golden.completed)}/{len(res.incident.completed)}",
        f"preempted unaccounted for      : {len(res.preempted_unaccounted)}"
        + (f"  {res.preempted_unaccounted}" if res.preempted_unaccounted else ""),
        f"protected jobs incomplete      : {len(res.protected_incomplete)}"
        + (f"  {res.protected_incomplete}" if res.protected_incomplete else ""),
        f"golden arm shed-free           : "
        f"{'yes' if res.golden_clean else 'NO'}",
        f"fault windows all closed       : "
        f"{'yes' if res.injector_quiescent else 'NO'}",
        "severity transitions (incident arm):",
    ]
    lines.extend(f"  {line}" for line in res.severity_log)
    if res.shed_actions:
        lines.append("shed actions:")
        lines.extend(
            f"  t={when:7.1f} {job_id}: {action} "
            f"({res.job_classes.get(job_id, '?')})"
            for when, job_id, action in res.shed_actions
        )
    if res.incident_counts:
        lines.append("incident summary:")
        lines.extend(summarize_incidents(res.incident_counts))
    return "\n".join(lines)
