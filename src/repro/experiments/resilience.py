"""Resilience scorecard: the Fig. 9 workload under the standard fault load.

The paper evaluates demand-response tracking on a healthy cluster; a
deployable framework must keep tracking through the faults real clusters
throw at it.  This experiment runs the *same* Fig. 9 workload (same seed,
same arrival schedule, same target signal) twice — once healthy, once under
:meth:`~repro.faults.FaultSchedule.standard_load` (one node crash, one
endpoint crash, 5 % link loss across the run, one corrupt status, one 60 s
meter outage) — and compares:

* tracking error (90th percentile, post-warmup) — faults must cost at most
  a bounded factor, not blow up control;
* completion — every submitted job drains, including the crash-requeued one;
* hygiene — zero ghost ``JobRecord`` entries once the cluster drains, and
  the fault event log is fully accounted for (every window closed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.fig9 import (
    DEFAULT_AVERAGE_POWER,
    DEFAULT_RESERVE,
    Fig9Result,
    build_demand_response_system,
)
from repro.faults.schedule import FaultSchedule

__all__ = ["ResilienceResult", "run_resilience", "format_table"]


@dataclass
class ResilienceResult:
    """Healthy-vs-faulted comparison of one demand-response run."""

    healthy: Fig9Result
    faulted: Fig9Result
    schedule: FaultSchedule
    ghost_jobs: int  # manager JobRecords alive after the settle window
    injector_quiescent: bool  # every event fired, every fault window closed

    @property
    def healthy_error90(self) -> float:
        return self.healthy.error_at_90th()

    @property
    def faulted_error90(self) -> float:
        return self.faulted.error_at_90th()

    @property
    def degradation_ratio(self) -> float:
        """Faulted / healthy 90th-percentile tracking error."""
        base = self.healthy_error90
        return self.faulted_error90 / base if base > 0 else float("inf")

    @property
    def requeued(self) -> list[str]:
        return self.faulted.result.requeued

    @property
    def requeued_completed(self) -> bool:
        """Every job requeued by a crash eventually produced totals."""
        done = {t.job_id for t in self.faulted.result.completed}
        return all(job_id in done for job_id in self.requeued)

    @property
    def fault_log(self) -> list[str]:
        return self.faulted.result.fault_log


def _run_one(
    *,
    duration: float,
    seed: int,
    warmup: float,
    average_power: float,
    reserve: float,
    fault_schedule: FaultSchedule | None,
) -> tuple[Fig9Result, int, bool]:
    system = build_demand_response_system(
        duration=duration,
        average_power=average_power,
        reserve=reserve,
        seed=seed,
        fault_schedule=fault_schedule,
    )
    result = system.run(duration, until_idle=True, max_time=duration + 3600.0)
    # Settle: after the last job drains, goodbyes are still in flight and any
    # silently-dead record needs dead_job_timeout to pass before eviction.
    settle = int(system.config.dead_job_timeout + 10)
    for _ in range(settle):
        system.step()
    # Score tracking only over the scheduled window: past `duration` the
    # cluster is draining toward empty while the target stays committed, so
    # the tail would swamp the healthy-vs-faulted comparison for both runs.
    trace = result.power_trace
    if len(trace):
        result = replace(result, power_trace=trace[trace[:, 0] <= duration])
    fig9 = Fig9Result(
        result=result,
        average_power=average_power,
        reserve=reserve,
        warmup=warmup,
    )
    quiescent = system.faults.quiescent if system.faults is not None else True
    return fig9, len(system.manager.jobs), quiescent


def run_resilience(
    *,
    duration: float = 3600.0,
    seed: int = 0,
    warmup: float = 300.0,
    average_power: float = DEFAULT_AVERAGE_POWER,
    reserve: float = DEFAULT_RESERVE,
    schedule: FaultSchedule | None = None,
) -> ResilienceResult:
    """Run the Fig. 9 workload healthy and under a fault load, and compare."""
    if schedule is None:
        schedule = FaultSchedule.standard_load(duration)
    healthy, _, _ = _run_one(
        duration=duration,
        seed=seed,
        warmup=warmup,
        average_power=average_power,
        reserve=reserve,
        fault_schedule=None,
    )
    faulted, ghosts, quiescent = _run_one(
        duration=duration,
        seed=seed,
        warmup=warmup,
        average_power=average_power,
        reserve=reserve,
        fault_schedule=schedule,
    )
    return ResilienceResult(
        healthy=healthy,
        faulted=faulted,
        schedule=schedule,
        ghost_jobs=ghosts,
        injector_quiescent=quiescent,
    )


def format_table(res: ResilienceResult) -> str:
    lines = [
        f"healthy tracking error 90th pct: {100 * res.healthy_error90:5.1f}%",
        f"faulted tracking error 90th pct: {100 * res.faulted_error90:5.1f}%"
        f"  ({res.degradation_ratio:.2f}x healthy, bound 1.50x)",
        f"jobs completed healthy/faulted : "
        f"{len(res.healthy.result.completed)}/{len(res.faulted.result.completed)}",
        f"jobs requeued by crashes       : {len(res.requeued)}"
        f"  (all finished: {'yes' if res.requeued_completed else 'NO'})",
        f"ghost job records at drain     : {res.ghost_jobs}",
        f"fault windows all closed       : "
        f"{'yes' if res.injector_quiescent else 'NO'}",
        "fault event log:",
    ]
    lines.extend(f"  {line}" for line in res.fault_log)
    return "\n".join(lines)
