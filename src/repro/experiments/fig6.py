"""Figs. 6–8: co-scheduled pairs under a static shared budget (§6.2).

Two jobs share 4 nodes under an 840 W budget — "mid-way between the maximum
and minimum power caps supported by our test platform", i.e. 75 % of TDP.
Six policies (Fig. 6; Figs. 7–8 use the relevant subset):

* performance-agnostic (even power caps);
* performance-aware (even slowdown, correct precharacterization);
* under-estimate: the sensitive job claimed as a low-sensitivity type,
  with and without online feedback;
* over-estimate: the insensitive job claimed as a high-sensitivity type,
  with and without online feedback.

Slowdown is reported against each type's uncapped time to completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.budget.base import PowerBudgeter
from repro.budget.even_power import EvenPowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorSystem, precharacterized_models
from repro.core.targets import ConstantTarget
from repro.modeling.classifier import JobClassifier
from repro.util.stats import confidence_interval_95
from repro.workloads.nas import NAS_TYPES

__all__ = [
    "PairSpec",
    "PolicySpec",
    "PairResult",
    "run_pair_experiment",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "format_table",
]


@dataclass(frozen=True)
class PairSpec:
    """Two co-scheduled jobs: (true type, claimed type) each, 2 nodes apiece."""

    job_a: tuple[str, str]
    job_b: tuple[str, str]
    nodes_each: int = 2


@dataclass(frozen=True)
class PolicySpec:
    """One bar group of Figs. 6–8."""

    label: str
    budgeter: PowerBudgeter
    pair: PairSpec
    feedback: bool


@dataclass
class PairResult:
    """Per-policy, per-job slowdown samples over the trials."""

    budget: float
    trials: int
    # policy label -> job key -> slowdown samples
    slowdowns: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def summary(self) -> dict[str, dict[str, tuple[float, float]]]:
        """(mean, 95 % CI half-width) per policy per job."""
        return {
            label: {job: confidence_interval_95(vals) for job, vals in jobs.items()}
            for label, jobs in self.slowdowns.items()
        }


def _job_key(true_type: str, claimed: str) -> str:
    return true_type if true_type == claimed else f"{true_type}={claimed}"


def run_pair_experiment(
    policies: list[PolicySpec],
    *,
    budget: float = 840.0,
    trials: int = 3,
    seed: int = 0,
    tick: float = 0.5,
) -> PairResult:
    """Execute each policy's pair ``trials`` times on the emulated cluster."""
    result = PairResult(budget=budget, trials=trials)
    models = precharacterized_models()
    for policy in policies:
        per_job: dict[str, list[float]] = {}
        for trial in range(trials):
            config = AnorConfig(
                num_nodes=2 * policy.pair.nodes_each,
                seed=seed * 1009 + trial,
                tick=tick,
                feedback_enabled=policy.feedback,
            )
            system = AnorSystem(
                budgeter=policy.budgeter,
                target_source=ConstantTarget(budget),
                classifier=JobClassifier(models),
                config=config,
            )
            for i, (true_type, claimed) in enumerate(
                (policy.pair.job_a, policy.pair.job_b)
            ):
                system.submit_now(
                    f"{true_type}-{i}",
                    true_type,
                    nodes=policy.pair.nodes_each,
                    claimed_type=claimed,
                )
            run = system.run(until_idle=True, max_time=7200.0)
            for totals in run.completed:
                true_type = totals.job_type
                idx = int(totals.job_id.split("-")[-1])
                claimed = (policy.pair.job_a, policy.pair.job_b)[idx][1]
                key = _job_key(true_type, claimed)
                ref = NAS_TYPES[true_type].compute_time(NAS_TYPES[true_type].p_max)
                per_job.setdefault(key, []).append(totals.runtime / ref - 1.0)
        result.slowdowns[policy.label] = per_job
    return result


def _policies_fig6() -> list[PolicySpec]:
    known = PairSpec(("bt", "bt"), ("sp", "sp"))
    under_bt = PairSpec(("bt", "is"), ("sp", "sp"))
    over_sp = PairSpec(("bt", "bt"), ("sp", "ep"))
    return [
        PolicySpec("Performance Agnostic", EvenPowerBudgeter(), known, False),
        PolicySpec("Performance Aware", EvenSlowdownBudgeter(), known, False),
        PolicySpec("Under-estimate bt", EvenSlowdownBudgeter(), under_bt, False),
        PolicySpec("Under-estimate bt, with feedback", EvenSlowdownBudgeter(), under_bt, True),
        PolicySpec("Over-estimate sp", EvenSlowdownBudgeter(), over_sp, False),
        PolicySpec("Over-estimate sp, with feedback", EvenSlowdownBudgeter(), over_sp, True),
    ]


def run_fig6(*, trials: int = 3, seed: int = 0, tick: float = 0.5) -> PairResult:
    """BT (high sensitivity) + SP (low sensitivity) under 840 W."""
    return run_pair_experiment(_policies_fig6(), trials=trials, seed=seed, tick=tick)


def run_fig7(*, trials: int = 3, seed: int = 1, tick: float = 0.5) -> PairResult:
    """Two BT instances, one possibly claimed as IS (Fig. 7)."""
    known = PairSpec(("bt", "bt"), ("bt", "bt"))
    mis = PairSpec(("bt", "bt"), ("bt", "is"))
    policies = [
        PolicySpec("Performance Agnostic", EvenPowerBudgeter(), known, False),
        PolicySpec("Performance Aware", EvenSlowdownBudgeter(), known, False),
        PolicySpec("Under-estimate bt", EvenSlowdownBudgeter(), mis, False),
        PolicySpec("Under-estimate bt, with feedback", EvenSlowdownBudgeter(), mis, True),
    ]
    return run_pair_experiment(policies, trials=trials, seed=seed, tick=tick)


def run_fig8(*, trials: int = 6, seed: int = 2, tick: float = 0.5) -> PairResult:
    """Two SP instances, one possibly claimed as EP (Fig. 8)."""
    known = PairSpec(("sp", "sp"), ("sp", "sp"))
    mis = PairSpec(("sp", "sp"), ("sp", "ep"))
    policies = [
        PolicySpec("Performance Agnostic", EvenPowerBudgeter(), known, False),
        PolicySpec("Performance Aware", EvenSlowdownBudgeter(), known, False),
        PolicySpec("Over-estimate sp", EvenSlowdownBudgeter(), mis, False),
        PolicySpec("Over-estimate sp, with feedback", EvenSlowdownBudgeter(), mis, True),
    ]
    return run_pair_experiment(policies, trials=trials, seed=seed, tick=tick)


def format_table(result: PairResult) -> str:
    lines = [f"{'policy':<36}{'job':<12}{'slowdown':>10}{'±95%CI':>9}"]
    for label, jobs in result.slowdowns.items():
        for job, samples in sorted(jobs.items()):
            mean, half = confidence_interval_95(samples)
            lines.append(f"{label:<36}{job:<12}{100 * mean:>9.1f}%{100 * half:>8.1f}%")
    return "\n".join(lines)
