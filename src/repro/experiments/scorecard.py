"""Reproduction scorecard: programmatic checks of the paper's claims.

Each figure's qualitative claims ("who wins, by roughly what factor, where
crossovers fall") are encoded as named :class:`Claim` predicates over the
corresponding experiment result.  Scoring a result yields a pass/fail table
— the same checks the benchmark suite asserts, reusable from notebooks, CI,
or the ``anor`` CLI without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Claim",
    "ClaimOutcome",
    "Scorecard",
    "score_fig3",
    "score_fig4",
    "score_fig5",
    "score_fig6",
    "score_fig10",
    "score_fig11",
    "score_resilience",
    "score_headnode_recovery",
    "score_partition",
    "score_byzantine",
    "score_soak",
    "score_forecast",
    "score_shed",
]


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper's evaluation."""

    figure: str
    statement: str
    check: Callable[[object], bool]

    def evaluate(self, result: object) -> "ClaimOutcome":
        try:
            passed = bool(self.check(result))
            error = None
        except Exception as exc:  # a crashed check is a failed claim
            passed, error = False, f"{type(exc).__name__}: {exc}"
        return ClaimOutcome(claim=self, passed=passed, error=error)


@dataclass(frozen=True)
class ClaimOutcome:
    claim: Claim
    passed: bool
    error: str | None = None


@dataclass
class Scorecard:
    """A batch of evaluated claims with render/summary helpers."""

    outcomes: list[ClaimOutcome]

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.passed)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total

    def render(self) -> str:
        rows = [f"reproduction scorecard: {self.passed}/{self.total} claims hold"]
        for o in self.outcomes:
            mark = "PASS" if o.passed else "FAIL"
            suffix = f"  [{o.error}]" if o.error else ""
            rows.append(f"  [{mark}] {o.claim.figure}: {o.claim.statement}{suffix}")
        return "\n".join(rows)


def _evaluate(claims: Sequence[Claim], result: object) -> Scorecard:
    return Scorecard([c.evaluate(result) for c in claims])


# --------------------------------------------------------------------- fig 3

FIG3_CLAIMS = (
    Claim("fig3", "EP is the most power-sensitive type",
          lambda r: max(
              {n: r.relative_times(n)[0][0] for n in r.runtimes},
              key=lambda n: r.relative_times(n)[0][0],
          ) == "ep"),
    Claim("fig3", "IS is the least power-sensitive type",
          lambda r: min(
              {n: r.relative_times(n)[0][0] for n in r.runtimes},
              key=lambda n: r.relative_times(n)[0][0],
          ) == "is"),
    Claim("fig3", "SP has the loosest characterization fit (paper: R²=0.84)",
          lambda r: r.r2["sp"] == min(r.r2.values())),
    Claim("fig3", "high-sensitivity types fit with R² ≥ 0.97",
          lambda r: all(r.r2[t] >= 0.95 for t in ("bt", "ep", "lu"))),
)


def score_fig3(result) -> Scorecard:
    return _evaluate(FIG3_CLAIMS, result)


# --------------------------------------------------------------------- fig 4

FIG4_CLAIMS = (
    Claim("fig4", "even-slowdown never worsens the worst-job slowdown",
          lambda r: bool(np.all(
              r.max_slowdown("even-slowdown") <= r.max_slowdown("even-power") + 1e-9
          ))),
    Claim("fig4", "no opportunity at the budget extremes",
          lambda r: abs(r.max_slowdown("even-slowdown")[0]
                        - r.max_slowdown("even-power")[0]) < 1e-6
          and abs(r.max_slowdown("even-slowdown")[-1]
                  - r.max_slowdown("even-power")[-1]) < 1e-6),
    Claim("fig4", "mid-range budgets show ≥25 % worst-job improvement",
          lambda r: (lambda ep, es, m: (ep[m] - es[m]) / ep[m] > 0.25)(
              r.max_slowdown("even-power"), r.max_slowdown("even-slowdown"),
              len(r.budgets) // 2,
          )),
)


def score_fig4(result) -> Scorecard:
    return _evaluate(FIG4_CLAIMS, result)


# --------------------------------------------------------------------- fig 5

def _excess(r, case, job):
    mis = r.slowdowns[case]["mischaracterized"][job]
    ideal = r.slowdowns[case]["ideal"][job]
    return float(np.max(mis - ideal))


FIG5_CLAIMS = (
    Claim("fig5", "underprediction slows the unknown job itself",
          lambda r: _excess(r, "under-small", "ft(unknown)") > 0.05),
    Claim("fig5", "overprediction slows the sensitive co-scheduled job",
          lambda r: _excess(r, "over-small", "ep") > 0.02),
    Claim("fig5", "small unknown jobs suffer most under underprediction",
          lambda r: _excess(r, "under-small", "ft(unknown)")
          > _excess(r, "under-large", "ft(unknown)")),
    Claim("fig5", "large unknown jobs hurt others most under overprediction",
          lambda r: _excess(r, "over-large", "ep") > _excess(r, "over-small", "ep")),
)


def score_fig5(result) -> Scorecard:
    return _evaluate(FIG5_CLAIMS, result)


# --------------------------------------------------------------------- fig 6

def _mean(r, policy, job):
    return float(np.mean(r.slowdowns[policy][job]))


FIG6_CLAIMS = (
    Claim("fig6", "performance awareness reduces BT's slowdown vs agnostic",
          lambda r: _mean(r, "Performance Aware", "bt")
          < _mean(r, "Performance Agnostic", "bt")),
    Claim("fig6", "under-estimating BT reopens the gap",
          lambda r: _mean(r, "Under-estimate bt", "bt=is")
          > _mean(r, "Performance Aware", "bt") + 0.05),
    Claim("fig6", "feedback recovers part of the under-estimate loss",
          lambda r: _mean(r, "Under-estimate bt, with feedback", "bt=is")
          < _mean(r, "Under-estimate bt", "bt=is")),
    Claim("fig6", "feedback recovers part of the over-estimate loss",
          lambda r: _mean(r, "Over-estimate sp, with feedback", "bt")
          < _mean(r, "Over-estimate sp", "bt") + 0.01),
)


def score_fig6(result) -> Scorecard:
    return _evaluate(FIG6_CLAIMS, result)


# -------------------------------------------------------------------- fig 10

FIG10_CLAIMS = (
    Claim("fig10", "sensitive types slow most under uniform capping",
          lambda r: np.mean([r.mean_slowdown("Uniform")[t] for t in ("bt", "lu", "ft")])
          > np.mean([r.mean_slowdown("Uniform")[t] for t in ("sp", "mg", "cg")])),
    Claim("fig10", "characterized balancer improves the slowest type "
          "(paper: 11.6 % → 8.0 %)",
          lambda r: r.slowest_type("Characterized")[1] < r.slowest_type("Uniform")[1]),
    Claim("fig10", "misclassifying BT as IS inflates BT's slowdown",
          lambda r: r.mean_slowdown("Misclassified")["bt"]
          > r.mean_slowdown("Characterized")["bt"]),
    Claim("fig10", "the adjusted (feedback) policy recovers",
          lambda r: r.mean_slowdown("Adjusted")["bt"]
          < r.mean_slowdown("Misclassified")["bt"]),
    Claim("fig10", "tracking error stays under ~30 % at the 90th percentile",
          lambda r: max(r.tracking_90th.values()) < 0.35),
)


def score_fig10(result) -> Scorecard:
    return _evaluate(FIG10_CLAIMS, result)


# -------------------------------------------------------------------- fig 11

FIG11_CLAIMS = (
    Claim("fig11", "more performance variation ⇒ more QoS degradation",
          lambda r: np.mean([r.qos90[n][-1].mean() for n in r.qos90])
          > np.mean([r.qos90[n][0].mean() for n in r.qos90])),
    Claim("fig11", "power tracking stays within the 30 %/90 % constraint",
          lambda r: float(r.tracking90.mean(axis=1).max()) < 0.30),
    Claim("fig11", "no type is near the QoS limit without variation",
          lambda r: all(r.qos90[n][0].mean() < r.qos_limit for n in r.qos90)),
)


def score_fig11(result) -> Scorecard:
    return _evaluate(FIG11_CLAIMS, result)


# --------------------------------------------------------------- resilience

RESILIENCE_CLAIMS = (
    Claim("resilience", "faulted run drains every submitted job",
          lambda r: r.faulted.result.unstarted_jobs == 0),
    Claim("resilience", "jobs requeued by the node crash all finish",
          lambda r: r.requeued_completed),
    Claim("resilience", "no ghost job records survive the drain",
          lambda r: r.ghost_jobs == 0),
    Claim("resilience", "every fault fired and every fault window closed",
          lambda r: r.injector_quiescent),
    Claim("resilience", "tracking error stays within 1.5x of healthy "
          "(90th pct)",
          lambda r: r.degradation_ratio <= 1.5),
)


def score_resilience(result) -> Scorecard:
    return _evaluate(RESILIENCE_CLAIMS, result)


# -------------------------------------------------- head-node crash recovery

HEADNODE_CLAIMS = (
    Claim("headnode", "planned draw never exceeds the budget ceiling, "
          "during or after recovery",
          lambda r: r.budget_violations == 0),
    Claim("headnode", "no job the golden run completed is lost to the outage",
          lambda r: not r.lost_jobs),
    Claim("headnode", "no job is admitted twice across the restart",
          lambda r: not r.double_admitted),
    Claim("headnode", "surviving jobs reconcile warm (re-HELLO merges "
          "checkpointed state)",
          lambda r: r.recovery_merges > 0),
    Claim("headnode", "the power trace re-converges to the golden run "
          "within 120 s of restart",
          lambda r: r.convergence_time is not None and r.convergence_time <= 120.0),
)


def score_headnode_recovery(result) -> Scorecard:
    return _evaluate(HEADNODE_CLAIMS, result)


# ------------------------------------------------------- partition tolerance

PARTITION_CLAIMS = (
    Claim("partition", "over-limit power is bounded by lease_ttl + ramp "
          "(+ slack) — the dead-man switch fired",
          lambda r: r.overshoot_seconds <= r.overshoot_bound),
    Claim("partition", "endpoints entered degraded autonomy during the "
          "partition",
          lambda r: r.degraded_endpoints > 0),
    Claim("partition", "the reliable layer declared the partition and its "
          "heal",
          lambda r: r.partitions_detected > 0 and r.partitions_healed > 0),
    Claim("partition", "no job the golden run completed is lost to the "
          "partition",
          lambda r: not r.lost_jobs),
    Claim("partition", "every fault fired and every fault window closed",
          lambda r: r.injector_quiescent),
    Claim("partition", "tracking re-converges to the golden run after the "
          "heal",
          lambda r: r.convergence_time is not None),
)


def score_partition(result) -> Scorecard:
    return _evaluate(PARTITION_CLAIMS, result)

# --------------------------------------------------------- byzantine drill

BYZANTINE_CLAIMS = (
    Claim("byzantine", "a fault-free run with auditing on never quarantines "
          "anyone (zero false positives)",
          lambda r: not r.false_quarantines_clean),
    Claim("byzantine", "every rogue endpoint is quarantined",
          lambda r: not r.missed_victims and len(r.victims_on) >= 3),
    Claim("byzantine", "detection latency stays under the bound for every "
          "victim",
          lambda r: all(
              lat <= r.detection_bound for lat in r.detection_latencies.values()
          )),
    Claim("byzantine", "no honest job is quarantined during the attack",
          lambda r: not r.collateral_quarantines),
    Claim("byzantine", "with auditing on, facility power settles back under "
          "target after the last quarantine",
          lambda r: r.on_settled_mean <= 0.01 * r.target_power),
    Claim("byzantine", "with auditing off, the attack sustains facility "
          "overshoot (the contrast the auditor removes)",
          lambda r: r.off_detect_mean >= 0.03 * r.target_power),
    Claim("byzantine", "auditing cuts over-target energy by ≥ 1.5x",
          lambda r: r.off_total_energy >= 1.5 * r.on_total_energy),
    Claim("byzantine", "the healed actuator's job re-earns trust within the "
          "rehabilitation bound",
          lambda r: r.rehabilitated),
    Claim("byzantine", "victims whose faults never heal stay quarantined",
          lambda r: r.unhealed_still_quarantined),
)


def score_byzantine(result) -> Scorecard:
    return _evaluate(BYZANTINE_CLAIMS, result)


# --------------------------------------------------------------- chaos soak

SOAK_CLAIMS = (
    Claim("soak", "at least one randomized episode ran to drain",
          lambda r: len(r.episodes) >= 1),
    Claim("soak", "the fault mix actually exercised the trust boundary",
          lambda r: sum(ep.quarantines for ep in r.episodes) > 0),
    Claim("soak", "no online invariant was violated in any episode "
          "(budget conservation, bounded overshoot, drain, no collateral "
          "quarantine)",
          lambda r: r.all_clean),
)


def score_soak(result) -> Scorecard:
    return _evaluate(SOAK_CLAIMS, result)


# ----------------------------------------------------------- forecast drill

FORECAST_CLAIMS = (
    Claim("forecast", "predictive planning strictly improves tracking "
          "(90th pct error ratio < 1)",
          lambda r: r.tracking_ratio < 1.0),
    Claim("forecast", "hysteresis + plan warm starts reduce cap rewrites "
          "vs the reactive seed",
          lambda r: r.predictive_rewrites < r.reactive_rewrites),
    Claim("forecast", "predictive planned draw never exceeds the budget "
          "ceiling",
          lambda r: r.predictive_violations == 0),
    Claim("forecast", "even a deliberately wrong forecast never pushes "
          "planned draw over the ceiling (envelope clamp)",
          lambda r: r.adversarial_violations == 0),
    Claim("forecast", "the adversarial forecaster trips fallback within the "
          "configured error window",
          lambda r: r.adversarial_fallbacks > 0
          and r.fallback_latency is not None
          and r.fallback_latency <= r.fallback_latency_bound),
    Claim("forecast", "the exact schedule forecaster never trips fallback",
          lambda r: r.predictive_fallbacks == 0),
    Claim("forecast", "all three arms drain the same workload",
          lambda r: len(r.reactive.completed) == len(r.predictive.completed)
          == len(r.adversarial.completed)
          and r.reactive.unstarted_jobs == 0),
)


def score_forecast(result) -> Scorecard:
    return _evaluate(FORECAST_CLAIMS, result)


# ---------------------------------------------------------------- shed drill

SHED_CLAIMS = (
    Claim("shed", "every rung of the ladder fired: preempts, kills, and "
          "ramped restores all occurred under the staggered incidents",
          lambda r: r.preempts > 0 and r.kills > 0 and r.restores > 0),
    Claim("shed", "protected jobs are never preempted or killed",
          lambda r: not r.protected_shed),
    Claim("shed", "shed ordering is respected: kills hit only the "
          "preemptible class, preempts never reach the protected class",
          lambda r: not r.kill_order_violations
          and not r.preempt_order_violations),
    Claim("shed", "no job is shed twice within one incident episode",
          lambda r: not r.double_shed),
    Claim("shed", "the recovery ceiling ramps back at no more than the "
          "configured watts per round",
          lambda r: r.max_ramp_step <= r.ramp_bound),
    Claim("shed", "severity does not flap: at most one escalation per "
          "scheduled incident (plus slack), and the run ends at normal",
          lambda r: r.escalations <= r.flap_bound and r.recovered_to_normal),
    Claim("shed", "every preempted job completes after recovery (or is "
          "legitimately killed by a deeper rung)",
          lambda r: not r.preempted_unaccounted),
    Claim("shed", "every protected job runs to completion",
          lambda r: not r.protected_incomplete),
    Claim("shed", "the golden arm (same knobs, no incidents) never sheds",
          lambda r: r.golden_clean),
    Claim("shed", "every fault window closed (injector quiescent)",
          lambda r: r.injector_quiescent),
)


def score_shed(result) -> Scorecard:
    return _evaluate(SHED_CLAIMS, result)
