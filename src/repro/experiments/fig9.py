"""Fig. 9: tracking a time-varying power target over a 1-hour schedule (§6.3).

"The power target changes once every 4 seconds, staying within the range of
2.3 kW to 4.5 kW ... Our power objective is not just to stay less than the
power target, but to closely follow the power target."  The 16-node cluster
spans exactly that band (16 × 140 W = 2.24 kW floor, 16 × 280 W = 4.48 kW
ceiling); jobs arrive from 6 long-running types at 95 % node utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tracking import TrackingConstraint, tracking_error_series
from repro.aqa.regulation import BoundedRandomWalkSignal
from repro.budget.base import PowerBudgeter
from repro.budget.even_slowdown import EvenSlowdownBudgeter
from repro.core.framework import AnorConfig, AnorResult, AnorSystem, precharacterized_models
from repro.core.targets import PowerTargetSource, RegulationTarget
from repro.faults.schedule import FaultSchedule
from repro.modeling.classifier import JobClassifier, Misclassification
from repro.workloads.generator import PoissonScheduleGenerator
from repro.workloads.nas import NAS_TYPES, long_running_mix

__all__ = ["Fig9Result", "run_fig9", "build_demand_response_system", "format_table"]

#: Fig. 9's committed band: mean 3.4 kW, reserve 1.05 kW ⇒ 2.35–4.45 kW,
#: inside the cluster's physical 2.24–4.48 kW range.
DEFAULT_AVERAGE_POWER = 3400.0
DEFAULT_RESERVE = 1050.0


@dataclass
class Fig9Result:
    result: AnorResult
    average_power: float
    reserve: float
    warmup: float

    def errors(self) -> np.ndarray:
        # Score energy-based power over the 4 s target period (§5.4).
        return tracking_error_series(
            self.result.power_trace, self.reserve, t_start=self.warmup,
            smooth_samples=4,
        )

    def error_at_90th(self) -> float:
        return float(np.percentile(self.errors(), 90))

    def within_constraint(self, constraint: TrackingConstraint | None = None) -> bool:
        return (constraint or TrackingConstraint()).satisfied(self.errors())


def build_demand_response_system(
    *,
    duration: float,
    budgeter: PowerBudgeter | None = None,
    misclassify_bt_as_is: bool = False,
    feedback: bool = True,
    utilization: float = 0.95,
    average_power: float = DEFAULT_AVERAGE_POWER,
    reserve: float = DEFAULT_RESERVE,
    num_nodes: int = 16,
    seed: int = 0,
    target_period: float = 4.0,
    fault_schedule: FaultSchedule | None = None,
    config: AnorConfig | None = None,
    target_source: PowerTargetSource | None = None,
) -> AnorSystem:
    """Assemble the Figs. 9–10 system: 6 long job types, moving target.

    ``fault_schedule`` attaches a :class:`~repro.faults.FaultInjector` so the
    resilience experiments can run the *same* workload, seed, and target
    signal with and without faults.  ``target_source`` replaces the default
    regulation target (the forecast drill materialises the same signal into
    a file-backed :class:`~repro.core.targets.SteppedTarget` so the planner
    can consume exact breakpoints).
    """
    types = {jt.name: jt for jt in long_running_mix()}
    generator = PoissonScheduleGenerator(
        list(types.values()), utilization=utilization, total_nodes=num_nodes,
        seed=seed * 7919 + 13,
    )
    schedule = generator.generate(duration)
    if target_source is None:
        signal = BoundedRandomWalkSignal(
            duration * 2, step=target_period, seed=seed * 104729 + 7
        )
        target_source = RegulationTarget(
            average_power, reserve, signal, update_period=target_period
        )
    models = precharacterized_models(NAS_TYPES)
    mis = (
        [Misclassification(true_type="bt", seen_as="is")]
        if misclassify_bt_as_is
        else []
    )
    classifier = JobClassifier(models, misclassifications=mis)
    return AnorSystem(
        budgeter=budgeter or EvenSlowdownBudgeter(),
        target_source=target_source,
        classifier=classifier,
        schedule=schedule,
        job_types=types,
        config=config
        or AnorConfig(num_nodes=num_nodes, seed=seed, feedback_enabled=feedback),
        fault_schedule=fault_schedule,
    )


def run_fig9(
    *,
    duration: float = 3600.0,
    seed: int = 0,
    warmup: float = 300.0,
    average_power: float = DEFAULT_AVERAGE_POWER,
    reserve: float = DEFAULT_RESERVE,
    config: AnorConfig | None = None,
) -> Fig9Result:
    """One hour of demand-response tracking with the characterized balancer.

    ``config`` overrides the default :class:`AnorConfig` — used by the
    telemetry smoke harness and the overhead benchmark, which run the same
    scenario with observability switched on.  Callers passing one must keep
    ``seed``/``num_nodes`` consistent themselves.
    """
    system = build_demand_response_system(
        duration=duration,
        average_power=average_power,
        reserve=reserve,
        seed=seed,
        config=config,
    )
    result = system.run(duration)
    return Fig9Result(
        result=result,
        average_power=average_power,
        reserve=reserve,
        warmup=warmup,
    )


def format_table(fig9: Fig9Result) -> str:
    errors = fig9.errors()
    trace = fig9.result.power_trace
    lines = [
        f"mean target power : {trace[:, 1].mean():8.0f} W (committed {fig9.average_power:.0f} ± {fig9.reserve:.0f})",
        f"mean measured     : {trace[:, 2].mean():8.0f} W",
        f"tracking error 90th pct: {100 * fig9.error_at_90th():5.1f}%  (paper: ≤17% fully characterized)",
        f"≤30% error fraction    : {100 * float(np.mean(errors <= 0.30)):5.1f}%  (constraint: ≥90%)",
        f"jobs completed         : {len(fig9.result.completed)}",
    ]
    return "\n".join(lines)
