"""EASY backfill scheduling.

The classic conservative-reservation variant: when the queue head cannot
start, it receives a *reservation* at the earliest time enough nodes will
have been released by running jobs (using their runtime estimates).  Jobs
behind the head may then start immediately iff they fit the currently idle
nodes and either (a) they are estimated to finish before the reservation, or
(b) they only use nodes the reservation does not need ("extra" nodes).  The
head can therefore never be delayed by a backfilled job — assuming estimates
are honest, which is also where backfill's well-known sensitivity to
estimate quality comes from.
"""

from __future__ import annotations

from typing import Sequence

from repro.sched.base import PendingJob, RunningView, Scheduler

__all__ = ["EasyBackfillScheduler"]


class EasyBackfillScheduler(Scheduler):
    """EASY backfill: one reservation for the head, opportunism behind it."""

    def select(
        self,
        pending: Sequence[PendingJob],
        running: Sequence[RunningView],
        idle_nodes: int,
        now: float,
    ) -> list[PendingJob]:
        self._validate(idle_nodes)
        queue = list(pending)
        live = list(running)
        to_start: list[PendingJob] = []
        free = idle_nodes

        # Phase 1: start in order while the head fits.
        while queue and queue[0].nodes <= free:
            job = queue.pop(0)
            to_start.append(job)
            free -= job.nodes
            live.append(
                RunningView(job.job_id, job.nodes, est_end=now + job.est_runtime)
            )
        if not queue:
            return to_start

        # Phase 2: the head is blocked — compute its reservation.
        head = queue.pop(0)
        shadow_time, extra_nodes = self._reservation(head, live, free, now)

        # Phase 3: backfill the remainder against the reservation.
        for job in queue:
            if job.nodes > free:
                continue
            finishes_before_shadow = now + job.est_runtime <= shadow_time
            fits_in_extra = job.nodes <= extra_nodes
            if not (finishes_before_shadow or fits_in_extra):
                continue
            to_start.append(job)
            free -= job.nodes
            if fits_in_extra and not finishes_before_shadow:
                extra_nodes -= job.nodes
            live.append(
                RunningView(job.job_id, job.nodes, est_end=now + job.est_runtime)
            )
        return to_start

    @staticmethod
    def _reservation(
        head: PendingJob,
        running: Sequence[RunningView],
        free: int,
        now: float,
    ) -> tuple[float, int]:
        """(shadow time, extra nodes): when the head can start, and how many
        idle nodes it will *not* need at that moment."""
        available = free
        releases = sorted(running, key=lambda r: r.est_end)
        for view in releases:
            if available >= head.nodes:
                break
            available += view.nodes
            shadow = view.est_end
        else:
            if available < head.nodes:
                # Even all running jobs ending would not free enough nodes —
                # the head can never start; treat "now" as the shadow so
                # nothing backfills ahead of an impossible job.
                return now, 0
        if free >= head.nodes:
            return now, free - head.nodes
        return shadow, available - head.nodes
