"""Cluster job schedulers for the end-to-end system.

The paper's harness replays a submission schedule through a scheduler on the
head node (§4.1, §5.3).  Two policies are provided for the emulated cluster:

* :class:`FcfsScheduler` — strict first-come-first-served: the queue head
  blocks everything behind it until its nodes free up.
* :class:`EasyBackfillScheduler` — EASY backfill: the head job gets a
  reservation at the earliest time enough nodes will be free, and shorter
  jobs from further back may jump ahead *only if* they cannot delay that
  reservation.  Backfilling is the mechanism overprovisioned-power work
  (e.g. RMAP, the paper's ref. [18]) builds on.

The AQA queue-weight scheduler used by the tabular simulator lives in
:mod:`repro.aqa.scheduler`.
"""

from repro.sched.base import PendingJob, RunningView, Scheduler
from repro.sched.fcfs import FcfsScheduler
from repro.sched.backfill import EasyBackfillScheduler

__all__ = [
    "PendingJob",
    "RunningView",
    "Scheduler",
    "FcfsScheduler",
    "EasyBackfillScheduler",
]
