"""Strict first-come-first-served scheduling."""

from __future__ import annotations

from typing import Sequence

from repro.sched.base import PendingJob, RunningView, Scheduler

__all__ = ["FcfsScheduler"]


class FcfsScheduler(Scheduler):
    """Start jobs in submission order; the head blocks everything behind it.

    This is the baseline behaviour of the paper's replay harness: simple,
    starvation-free, but it leaves nodes idle whenever the head job is wide.
    """

    # Pure function of (pending, idle_nodes): never reads ``now`` or
    # ``running``, keeps no state — safe for the event-driven stride probe.
    time_invariant = True

    def select(
        self,
        pending: Sequence[PendingJob],
        running: Sequence[RunningView],
        idle_nodes: int,
        now: float,
    ) -> list[PendingJob]:
        self._validate(idle_nodes)
        to_start: list[PendingJob] = []
        free = idle_nodes
        for job in pending:
            if job.nodes > free:
                break  # strict FCFS: nothing behind the head may pass it
            to_start.append(job)
            free -= job.nodes
        return to_start
