"""Scheduler interface shared by the emulated-cluster policies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

__all__ = ["PendingJob", "RunningView", "Scheduler"]


@dataclass(frozen=True)
class PendingJob:
    """A queued job as the scheduler sees it."""

    job_id: str
    nodes: int
    submit_time: float
    est_runtime: float  # user-style estimate (e.g. the job's time limit)
    attempt: int = 1  # >1 when requeued after a node failure

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"{self.job_id}: nodes must be ≥ 1")
        if self.est_runtime <= 0:
            raise ValueError(f"{self.job_id}: est_runtime must be positive")
        if self.attempt < 1:
            raise ValueError(f"{self.job_id}: attempt must be ≥ 1")


@dataclass(frozen=True)
class RunningView:
    """A running job as the scheduler sees it."""

    job_id: str
    nodes: int
    est_end: float  # absolute estimated completion time

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"{self.job_id}: nodes must be ≥ 1")


class Scheduler(ABC):
    """Chooses which queued jobs start this round."""

    #: True when :meth:`select` is a pure function of
    #: ``(pending, running, idle_nodes)`` that never reads ``now`` and
    #: mutates no scheduler state.  The event-driven framework loop may then
    #: evaluate one round and reuse an empty decision across control-free
    #: ticks instead of re-polling every simulated second.  Policies that
    #: age jobs, reserve windows, or otherwise depend on the clock must
    #: leave this False.
    time_invariant: bool = False

    @abstractmethod
    def select(
        self,
        pending: Sequence[PendingJob],
        running: Sequence[RunningView],
        idle_nodes: int,
        now: float,
    ) -> list[PendingJob]:
        """Jobs to start now, in start order.

        Implementations must never start more nodes than ``idle_nodes`` and
        must not reorder the identity of jobs they return (each returned job
        appears exactly once and was in ``pending``).
        """

    @staticmethod
    def _validate(idle_nodes: int) -> None:
        if idle_nodes < 0:
            raise ValueError(f"idle_nodes must be ≥ 0, got {idle_nodes}")
