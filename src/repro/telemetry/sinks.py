"""Trace sinks: a bounded in-memory ring and a JSONL trace writer.

Sinks receive every record the :class:`~repro.telemetry.events.EventBus`
emits, in order.  The ring buffer is the default consumer surface (``anor
top``, incident summaries); the JSONL writer produces offline-analysable
traces alongside the durable journal (``anor trace export``).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.telemetry.events import INCIDENT

__all__ = ["RingBufferSink", "JsonlTraceSink"]


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be ≥ 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self.total_emitted = 0

    def emit(self, record: dict) -> None:
        self.total_emitted += 1
        self._ring.append(record)

    def records(self) -> list[dict]:
        return list(self._ring)

    def incidents(self) -> list[dict]:
        """Incident events still in the ring, oldest first."""
        return [r for r in self._ring if r["name"] == INCIDENT]

    @property
    def dropped(self) -> int:
        """Records aged out of the bounded window."""
        return self.total_emitted - len(self._ring)


class JsonlTraceSink:
    """Appends each record as one JSON line; flushes on a small cadence.

    The flush interval bounds how much trace a hard kill can lose without
    paying a syscall per record; :meth:`close` flushes the remainder.  Also
    a context manager: ``with JsonlTraceSink(path) as sink: ...`` guarantees
    the flush-on-close even when the body raises or exits early — the CLI
    export path uses this so an interrupted run can't leave a silently
    truncated trace.
    """

    def __init__(self, path: str | Path, *, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be ≥ 1, got {flush_every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._flush_every = int(flush_every)
        self._since_flush = 0
        self.records_written = 0

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._fh.flush()
            self._since_flush = 0

    def flush(self) -> None:
        self._fh.flush()
        self._since_flush = 0

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
