"""Prometheus text-exposition exporter and a stdlib scrape endpoint.

``render_prometheus`` serialises a :class:`MetricsRegistry` into text
exposition format version 0.0.4 (``# HELP`` / ``# TYPE`` headers, labelled
samples, cumulative ``_bucket`` series with ``le="+Inf"`` mirroring
``_count``).  ``MetricsHTTPServer`` serves it from ``/metrics`` on an
opt-in port via ``http.server`` in a daemon thread — no third-party client
library, so the container's baked-in toolchain is enough.
"""

from __future__ import annotations

import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry.metrics import Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "MetricsHTTPServer"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Serialise every family in ``registry`` to text exposition format."""
    lines: list[str] = []
    for name, kind, help_text, rows in registry.families():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, inst in rows:
            if isinstance(inst, Histogram):
                # Histogram counts are stored cumulatively already.
                for bound, count in zip(inst.buckets, inst.counts):
                    bucket_labels = dict(labels, le=_fmt(bound))
                    lines.append(
                        f"{name}_bucket{_labels_str(bucket_labels)} {count}"
                    )
                inf_labels = dict(labels, le="+Inf")
                lines.append(f"{name}_bucket{_labels_str(inf_labels)} {inst.count}")
                lines.append(f"{name}_sum{_labels_str(labels)} {_fmt(inst.sum)}")
                lines.append(f"{name}_count{_labels_str(labels)} {inst.count}")
            elif isinstance(inst, Gauge):
                lines.append(f"{name}{_labels_str(labels)} {_fmt(inst.value)}")
            else:  # counter
                lines.append(f"{name}{_labels_str(labels)} {_fmt(inst.value)}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # injected by the server factory

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "try /metrics")
            return
        body = render_prometheus(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:  # noqa: ARG002
        pass  # scrapes must not spam the experiment's stdout


class MetricsHTTPServer:
    """Background ``/metrics`` endpoint bound to ``127.0.0.1:port``.

    ``port=0`` asks the OS for an ephemeral port (tests, CI smoke); the
    bound port is available as :attr:`port`.  The serving thread is a
    daemon, so a forgotten shutdown cannot hang interpreter exit.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0) -> None:
        handler = type("_BoundHandler", (_Handler,), {"registry": registry})
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="anor-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}/metrics"

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
