"""Telemetry smoke harness: ``python -m repro.telemetry.smoke --out trace.jsonl``.

One short Fig. 9 run with full observability switched on, then three gates
(CI's telemetry-smoke job runs exactly this):

1. the JSONL trace parses and passes :func:`repro.telemetry.schema.validate_trace`;
2. every control period produced a complete ``control-round`` span, and
   budget rounds carry the policy attribute;
3. the Prometheus endpoint scrapes, and the exposition reports cluster
   power, target, and at least one per-job cap gauge.

Exit code 0 iff all gates pass; failures print what broke.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from pathlib import Path

from repro.telemetry.schema import build_span_tree, summarize_trace, validate_trace

__all__ = ["run_smoke", "main"]

_REQUIRED_SERIES = (
    "anor_cluster_power_watts",
    "anor_cluster_target_watts",
    "anor_job_cap_watts{",
    "anor_budget_rounds_total",
)


def run_smoke(
    *, out: str, duration: float = 300.0, seed: int = 0, verbose: bool = True
) -> list[str]:
    """Run the smoke scenario; returns a list of failures (empty = pass)."""
    from repro.core.framework import AnorConfig
    from repro.experiments.fig9 import build_demand_response_system

    failures: list[str] = []
    cfg = AnorConfig(
        seed=seed, telemetry_enabled=True, trace_path=out, prometheus_port=0
    )
    system = build_demand_response_system(duration=duration, seed=seed, config=cfg)
    system.run(duration)

    # Gate 3 first, while the endpoint is still serving.
    try:
        body = urllib.request.urlopen(system.metrics_server.url, timeout=10).read()
        exposition = body.decode("utf-8")
        for series in _REQUIRED_SERIES:
            if series not in exposition:
                failures.append(f"prometheus exposition missing {series!r}")
    except OSError as exc:
        failures.append(f"prometheus scrape failed: {exc}")
    finally:
        system.metrics_server.shutdown()
        system.telemetry.close()

    # Gate 1: trace parses and validates.
    records = []
    for i, line in enumerate(Path(out).read_text().splitlines()):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            failures.append(f"trace line {i} is not JSON: {exc}")
    errors = validate_trace(records)
    failures.extend(f"trace: {e}" for e in errors[:10])
    if len(errors) > 10:
        failures.append(f"trace: ... {len(errors) - 10} more validation error(s)")

    # Gate 2: span-tree shape.  The manager runs once per manager_period, so
    # a clean run has one complete control-round span per period.
    expected_rounds = int(duration / cfg.manager_period)
    roots = build_span_tree(records)
    rounds = [r for r in roots if r.name == "control-round"]
    complete = [r for r in rounds if r.complete]
    if len(complete) < expected_rounds:
        failures.append(
            f"expected ≥ {expected_rounds} complete control-round spans, "
            f"got {len(complete)}"
        )
    budgets = [c for r in rounds for c in r.children if c.name == "budget-round"]
    if not budgets:
        failures.append("no budget-round spans recorded")
    elif any("policy" not in b.attrs for b in budgets):
        failures.append("budget-round span missing the policy attribute")

    if verbose:
        summary = summarize_trace(records)
        print(f"trace: {summary['records']} records, spans={summary['spans']}")
        print(
            f"rounds: {len(complete)}/{len(rounds)} complete "
            f"(expected ≥ {expected_rounds}), budget-rounds: {len(budgets)}"
        )
        print(f"incidents: {summary['incidents'] or '(none)'}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.smoke",
        description="End-to-end telemetry smoke test (trace + scrape gates).",
    )
    parser.add_argument("--out", required=True, help="JSONL trace output path")
    parser.add_argument("--duration", type=float, default=300.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    failures = run_smoke(out=args.out, duration=args.duration, seed=args.seed)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("telemetry smoke: PASS")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
