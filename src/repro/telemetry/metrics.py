"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the *numeric* half of :mod:`repro.telemetry` (the event/span
bus is the structured half).  Design constraints, in order:

1. **Free when off.**  A disabled registry hands out shared null instruments
   whose methods are no-ops, and every instrumented hot path guards on a
   single ``telemetry.enabled`` attribute — no dict lookups, no string
   formatting, no allocation.  Golden traces and the perf harness must not
   be able to tell telemetry exists.
2. **Deterministic.**  Instruments never consume RNG, never read wall-clock
   time, and never change control flow; they only record what the caller
   already computed.
3. **Prometheus-shaped.**  Families carry a help string and a type; label
   sets address instruments within a family; histograms use fixed buckets
   with cumulative counts — exactly what the text exposition format needs
   (:mod:`repro.telemetry.prometheus`).

Quantiles come from the fixed buckets (linear interpolation inside the
bucket), the standard trade: bounded memory and mergeability for bounded
rank error.
"""

from __future__ import annotations

import math
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: ratio-style observations (tracking error,
#: relative overhead).  Callers measuring watts pass explicit buckets.
DEFAULT_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be ≥ 0, got {amount}")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Adopt an externally accumulated running total.

        For counters whose truth lives elsewhere (e.g. per-channel message
        counts summed over every link ever created).  The total must be
        non-decreasing across calls — counter semantics are the caller's
        contract; this just refuses obvious regressions.
        """
        if total < self.value - 1e-9:
            raise ValueError(
                f"counter total went backwards: {self.value} -> {total}"
            )
        self.value = float(total)


class Gauge:
    """A value that goes up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative counts and bucket quantiles."""

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("need at least one bucket bound")
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {buckets}")
        self.buckets = ordered
        # counts[i] = observations ≤ buckets[i]; the implicit +Inf bucket is
        # ``count`` itself (cumulative form, as Prometheus exposes it).
        self.counts = [0] * len(ordered)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        if math.isnan(v):
            return  # a NaN observation carries no rank information
        self.count += 1
        self.sum += v
        i = bisect_left(self.buckets, v)
        for j in range(i, len(self.counts)):
            self.counts[j] += 1

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 ≤ q ≤ 1) from the fixed buckets.

        Linear interpolation within the winning bucket; observations above
        the last bound estimate as the last bound (the +Inf bucket has no
        upper edge to interpolate toward).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        prev_cum = 0
        lo = 0.0
        for bound, cum in zip(self.buckets, self.counts):
            if cum >= rank:
                width = cum - prev_cum
                frac = (rank - prev_cum) / width if width > 0 else 1.0
                return lo + frac * (bound - lo)
            prev_cum, lo = cum, bound
        return self.buckets[-1]


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass

    def set_total(self, total: float) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


#: Shared no-op instruments: a disabled registry returns these singletons so
#: instrumented code holds ordinary handles and never allocates.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class _Family:
    """One named metric family: type, help text, and labelled instruments."""

    __slots__ = ("name", "kind", "help", "buckets", "instruments")

    def __init__(
        self, name: str, kind: str, help_text: str, buckets: tuple[float, ...] | None
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.instruments: dict[_LabelKey, Counter | Gauge | Histogram] = {}


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


class MetricsRegistry:
    """Registry of metric families, addressed by (name, labels)."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------ factories

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._instrument(name, "counter", help_text, None, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._instrument(name, "gauge", help_text, None, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._instrument(name, "histogram", help_text, tuple(buckets), labels)

    def _instrument(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: tuple[float, ...] | None,
        labels: dict[str, str],
    ):
        if not name or set(name) - _NAME_OK or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        elif kind == "histogram" and buckets != family.buckets:
            raise ValueError(f"metric {name!r} already registered with other buckets")
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            if kind == "counter":
                instrument = Counter()
            elif kind == "gauge":
                instrument = Gauge()
            else:
                instrument = Histogram(family.buckets)
            family.instruments[key] = instrument
        return instrument

    # ------------------------------------------------------------ inspection

    def families(self) -> list[tuple[str, str, str, list[tuple[dict, object]]]]:
        """Snapshot for exporters: (name, kind, help, [(labels, instrument)])."""
        out = []
        for name in sorted(self._families):
            fam = self._families[name]
            rows = [
                (dict(key), inst) for key, inst in sorted(fam.instruments.items())
            ]
            out.append((fam.name, fam.kind, fam.help, rows))
        return out

    def get_value(self, name: str, **labels: str) -> float | None:
        """Current value of one counter/gauge (tests and the top view)."""
        fam = self._families.get(name)
        if fam is None:
            return None
        inst = fam.instruments.get(_label_key(labels))
        if inst is None or isinstance(inst, Histogram):
            return None
        return inst.value


#: Shared disabled registry (the `Telemetry.NULL` default).
NULL_REGISTRY = MetricsRegistry(enabled=False)
