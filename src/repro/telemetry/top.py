"""``anor top`` — a live terminal view of a running two-tier system.

The repo's systems are in-process simulations, so ``top`` runs the Fig. 9
demand-response scenario with telemetry enabled and repaints a frame every
``refresh`` simulated seconds: cluster power vs. target, per-job caps and
modelled slowdowns, queue state, and the most recent incidents.  With
``--once`` (or a non-tty stream) it prints a single final frame and exits,
which is what the tests and CI consume.

``snapshot_system``/``render_frame`` are split so the view is testable:
snapshot reads a live :class:`~repro.core.framework.AnorSystem`, render is a
pure function of the snapshot dict.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.telemetry import summarize_incidents

__all__ = ["snapshot_system", "render_frame", "run_top"]


def snapshot_system(system) -> dict:
    """Read one display frame's worth of state from a live AnorSystem."""
    now = system.cluster.clock.now
    manager = system.manager
    target = system.target_source.target(now)
    jobs = []
    if manager is not None:
        for record in sorted(manager.jobs.values(), key=lambda r: r.job_id):
            status = record.last_status
            model = record.active_model
            cap = record.last_cap
            slowdown = None
            if cap is not None:
                try:
                    slowdown = float(model.slowdown_at(cap))
                except (ValueError, ZeroDivisionError):
                    slowdown = None
            jobs.append(
                {
                    "job_id": record.job_id,
                    "type": record.claimed_type,
                    "nodes": record.nodes,
                    "cap": cap,
                    "power": status.measured_power if status is not None else None,
                    "slowdown": slowdown,
                    "model": "online" if record.online_model is not None else "believed",
                    "silent_for": now - record.last_heard,
                }
            )
    last_round = manager.last_round if manager is not None else None
    return {
        "t": now,
        "head_up": manager is not None,
        "target": target,
        "measured": system.cluster.measured_power,
        "policy": system.budgeter.name,
        "jobs": jobs,
        "queued": len(system._queue),
        "pending": len(system._pending),
        "running": len(system.cluster.running),
        "completed": len(system.cluster.completed),
        "round": {
            "correction": last_round.correction,
            "allocated": last_round.allocated,
            "reserved": last_round.reserved,
            "idle_power": last_round.idle_power,
            "stale": last_round.stale_jobs,
            "dormant": last_round.dormant_jobs,
            "active": last_round.active_jobs,
            "recovering": last_round.recovering_jobs,
        }
        if last_round is not None
        else None,
        "incident_counts": system.telemetry.incident_counts,
        "recent_incidents": [
            f"t={r['t']:.0f} {r['attrs'].get('category', '?')}"
            for r in system.telemetry.incidents()[-5:]
        ],
    }


def _bar(value: float, lo: float, hi: float, width: int = 30) -> str:
    """A fixed-width meter bar positioning ``value`` within [lo, hi]."""
    if hi <= lo:
        return "·" * width
    frac = min(max((value - lo) / (hi - lo), 0.0), 1.0)
    filled = round(frac * width)
    return "█" * filled + "·" * (width - filled)


def render_frame(snap: dict) -> str:
    """Render one snapshot as a fixed-layout text frame."""
    target, measured = snap["target"], snap["measured"]
    lo = 0.9 * min(target, measured) if min(target, measured) > 0 else 0.0
    hi = 1.1 * max(target, measured, 1.0)
    head = "UP" if snap["head_up"] else "DOWN"
    lines = [
        f"anor top — t={snap['t']:.0f}s  policy={snap['policy']}  head={head}",
        f"  target   {target:8.0f} W  [{_bar(target, lo, hi)}]",
        f"  measured {measured:8.0f} W  [{_bar(measured, lo, hi)}]",
        f"  jobs: {snap['running']} running, {snap['queued']} queued, "
        f"{snap['pending']} pending, {snap['completed']} done",
    ]
    rnd = snap["round"]
    if rnd is not None:
        lines.append(
            f"  round: active={rnd['active']} dormant={rnd['dormant']} "
            f"stale={rnd['stale']} recovering={rnd['recovering']}  "
            f"allocated={rnd['allocated']:.0f}W reserved={rnd['reserved']:.0f}W "
            f"correction={rnd['correction']:+.0f}W"
        )
    lines.append("")
    lines.append(f"  {'JOB':<16} {'TYPE':<6} {'N':>2} {'CAP/W':>7} "
                 f"{'POWER/W':>8} {'SLOWDOWN':>8} {'MODEL':<8}")
    for job in snap["jobs"]:
        cap = f"{job['cap']:.0f}" if job["cap"] is not None else "-"
        power = f"{job['power']:.0f}" if job["power"] is not None else "-"
        # slowdown_at is fractional (0.09 = 9 % slower than uncapped).
        slow = f"{100 * job['slowdown']:+.0f}%" if job["slowdown"] is not None else "-"
        lines.append(
            f"  {job['job_id']:<16} {job['type']:<6} {job['nodes']:>2} "
            f"{cap:>7} {power:>8} {slow:>8} {job['model']:<8}"
        )
    if not snap["jobs"]:
        lines.append("  (no connected jobs)")
    lines.append("")
    lines.append("  incidents:")
    lines.extend(summarize_incidents(snap["incident_counts"]))
    for line in snap["recent_incidents"]:
        lines.append(f"    {line}")
    return "\n".join(lines)


def run_top(
    *,
    duration: float = 600.0,
    seed: int = 0,
    refresh: float = 10.0,
    once: bool = False,
    stream: TextIO | None = None,
) -> int:
    """Run the Fig. 9 scenario with telemetry on, repainting a live frame.

    Interactive ttys get an ANSI repaint every ``refresh`` simulated
    seconds; ``once=True`` (or a non-tty stream) renders only the final
    frame.  Returns a process exit code.
    """
    from repro.core.framework import AnorConfig
    from repro.experiments.fig9 import build_demand_response_system

    out = stream if stream is not None else sys.stdout
    live = not once and out.isatty()
    cfg = AnorConfig(seed=seed, telemetry_enabled=True)
    system = build_demand_response_system(duration=duration, seed=seed, config=cfg)
    next_paint = 0.0
    while system.cluster.clock.now < duration:
        system.step()
        if live and system.cluster.clock.now >= next_paint:
            frame = render_frame(snapshot_system(system))
            out.write("\x1b[2J\x1b[H" + frame + "\n")
            out.flush()
            next_paint = system.cluster.clock.now + refresh
    out.write(render_frame(snapshot_system(system)) + "\n")
    out.flush()
    return 0
