"""Structured event/trace bus: control rounds as span trees, plus incidents.

Every record is a plain JSON-serialisable dict with a fixed envelope
(see :mod:`repro.telemetry.schema`)::

    {"kind": "span_start" | "span_end" | "event",
     "name": <dotted name>, "t": <sim seconds>,
     "id": <record id>, "parent": <enclosing span id or None>,
     "attrs": {...}}

Spans model one control round end-to-end — target read → budget round
(policy, slowdown/γ, per-job caps, recovering-job reservations) → cap
dispatch — with model-fit acceptance/rejection, fault incidents, and
checkpoint/journal/recovery events hanging off the tree as events.
``span_end`` reuses the ``id`` of its ``span_start``; attrs on the end
record carry results computed during the span.

The bus is synchronous and single-threaded like the simulator itself:
``begin_span`` returns an int handle, sinks see records in emission order,
and nothing here consumes RNG or branches on data — a disabled bus is a
handful of no-op methods (``NULL_BUS``).
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["EventBus", "Sink", "NULL_BUS", "INCIDENT"]

#: Record name used for incident events (fault/recovery/hygiene anomalies);
#: the incident category travels in ``attrs["category"]``.
INCIDENT = "incident"


class Sink(Protocol):
    """Anything that can absorb trace records."""

    def emit(self, record: dict) -> None: ...  # pragma: no cover - protocol


class EventBus:
    """Synchronous span/event recorder fanning out to sinks."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.sinks: list[Sink] = []
        self._next_id = 1
        self._open_spans: set[int] = set()
        self.records_emitted = 0
        self.incident_counts: dict[str, int] = {}

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)

    # -------------------------------------------------------------- emission

    def _emit(self, record: dict) -> None:
        self.records_emitted += 1
        for sink in self.sinks:
            sink.emit(record)

    def begin_span(
        self, name: str, t: float, *, parent: int | None = None, **attrs
    ) -> int:
        """Open a span; returns its id (0 when the bus is disabled)."""
        if not self.enabled:
            return 0
        sid = self._next_id
        self._next_id += 1
        self._open_spans.add(sid)
        self._emit(
            {
                "kind": "span_start",
                "name": name,
                "t": float(t),
                "id": sid,
                "parent": parent,
                "attrs": attrs,
            }
        )
        return sid

    def end_span(self, span_id: int, t: float, **attrs) -> None:
        """Close a span opened by :meth:`begin_span` (idempotent on 0)."""
        if not self.enabled or span_id == 0:
            return
        if span_id not in self._open_spans:
            raise ValueError(f"span {span_id} is not open")
        self._open_spans.discard(span_id)
        self._emit(
            {
                "kind": "span_end",
                "name": None,
                "t": float(t),
                "id": span_id,
                "parent": None,
                "attrs": attrs,
            }
        )

    def event(
        self, name: str, t: float, *, parent: int | None = None, **attrs
    ) -> None:
        """Record a point-in-time event, optionally inside a span."""
        if not self.enabled:
            return
        eid = self._next_id
        self._next_id += 1
        self._emit(
            {
                "kind": "event",
                "name": name,
                "t": float(t),
                "id": eid,
                "parent": parent,
                "attrs": attrs,
            }
        )

    def incident(
        self, category: str, t: float, *, parent: int | None = None, **attrs
    ) -> None:
        """Record an incident: an anomaly worth surfacing to operators.

        Categories are short kebab-case strings ("node-crash",
        "journal-tail-dropped", "restart-cancelled", ...); the per-category
        totals are kept on the bus so summaries don't require a sink.
        """
        if not self.enabled:
            return
        self.incident_counts[category] = self.incident_counts.get(category, 0) + 1
        self.event(INCIDENT, t, parent=parent, category=category, **attrs)

    @property
    def open_spans(self) -> int:
        return len(self._open_spans)


#: Shared disabled bus — emission methods return immediately.
NULL_BUS = EventBus(enabled=False)
