"""Trace-record schema: validation, span-tree reconstruction, summaries.

The JSONL trace format is deliberately tiny — five envelope fields and a
free-form ``attrs`` object — so this module is the single source of truth
for what a well-formed trace looks like.  CI's telemetry-smoke job and the
span-tree tests both validate through here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.telemetry.events import INCIDENT

__all__ = [
    "validate_record",
    "validate_trace",
    "SpanNode",
    "build_span_tree",
    "summarize_trace",
]

_KINDS = {"span_start", "span_end", "event"}


def validate_record(obj: object, index: int = 0) -> list[str]:
    """Structural errors in one decoded trace record (empty = valid)."""
    errors: list[str] = []
    where = f"record {index}"
    if not isinstance(obj, dict):
        return [f"{where}: not an object"]
    missing = {"kind", "name", "t", "id", "parent", "attrs"} - set(obj)
    if missing:
        errors.append(f"{where}: missing fields {sorted(missing)}")
        return errors
    kind = obj["kind"]
    if kind not in _KINDS:
        errors.append(f"{where}: unknown kind {kind!r}")
    if kind == "span_end":
        if obj["name"] is not None:
            errors.append(f"{where}: span_end must carry name=null")
    elif not isinstance(obj["name"], str) or not obj["name"]:
        errors.append(f"{where}: name must be a non-empty string")
    if not isinstance(obj["t"], (int, float)) or isinstance(obj["t"], bool):
        errors.append(f"{where}: t must be a number")
    if not isinstance(obj["id"], int) or obj["id"] < 1:
        errors.append(f"{where}: id must be a positive integer")
    if obj["parent"] is not None and not isinstance(obj["parent"], int):
        errors.append(f"{where}: parent must be an integer or null")
    if not isinstance(obj["attrs"], dict):
        errors.append(f"{where}: attrs must be an object")
    return errors


def validate_trace(records: Iterable[dict]) -> list[str]:
    """Structural + referential errors across a whole record stream.

    Checks every record's envelope, that span_end ids match a previously
    opened (and not yet closed) span, that parents reference spans that were
    open at emission time, and that ids are unique per span_start/event.
    """
    errors: list[str] = []
    open_spans: set[int] = set()
    seen_ids: set[int] = set()
    last_t: float | None = None
    for i, rec in enumerate(records):
        rec_errors = validate_record(rec, i)
        errors.extend(rec_errors)
        if rec_errors:
            continue
        t = float(rec["t"])
        if last_t is not None and t < last_t - 1e-9:
            errors.append(f"record {i}: time went backwards ({last_t} -> {t})")
        last_t = t
        rid, kind, parent = rec["id"], rec["kind"], rec["parent"]
        if kind == "span_end":
            if rid not in open_spans:
                errors.append(f"record {i}: span_end for unopened span {rid}")
            open_spans.discard(rid)
            continue
        if rid in seen_ids:
            errors.append(f"record {i}: duplicate id {rid}")
        seen_ids.add(rid)
        if parent is not None and parent not in open_spans:
            errors.append(f"record {i}: parent {parent} is not an open span")
        if kind == "span_start":
            open_spans.add(rid)
    for sid in sorted(open_spans):
        errors.append(f"span {sid} never closed")
    return errors


@dataclass
class SpanNode:
    """One reconstructed span with its children and contained events."""

    span_id: int
    name: str
    start: float
    attrs: dict
    end: float | None = None
    end_attrs: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.end is not None

    def child(self, name: str) -> "SpanNode | None":
        return next((c for c in self.children if c.name == name), None)


def build_span_tree(records: Iterable[dict]) -> list[SpanNode]:
    """Reconstruct root spans (with nested children/events) from a stream.

    Unparented events are dropped — the tree is about spans; standalone
    events are better read straight off the record stream.
    """
    roots: list[SpanNode] = []
    nodes: dict[int, SpanNode] = {}
    for rec in records:
        kind = rec["kind"]
        if kind == "span_start":
            node = SpanNode(
                span_id=rec["id"],
                name=rec["name"],
                start=float(rec["t"]),
                attrs=dict(rec["attrs"]),
            )
            nodes[rec["id"]] = node
            parent = nodes.get(rec["parent"]) if rec["parent"] is not None else None
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
        elif kind == "span_end":
            node = nodes.get(rec["id"])
            if node is not None:
                node.end = float(rec["t"])
                node.end_attrs = dict(rec["attrs"])
        elif kind == "event" and rec["parent"] is not None:
            parent = nodes.get(rec["parent"])
            if parent is not None:
                parent.events.append(rec)
    return roots


def summarize_trace(records: list[dict]) -> dict:
    """Counts by span/event name plus incident categories (for CLI output)."""
    spans: dict[str, int] = {}
    events: dict[str, int] = {}
    incidents: dict[str, int] = {}
    t_min = t_max = None
    for rec in records:
        t = float(rec["t"])
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
        if rec["kind"] == "span_start":
            spans[rec["name"]] = spans.get(rec["name"], 0) + 1
        elif rec["kind"] == "event":
            events[rec["name"]] = events.get(rec["name"], 0) + 1
            if rec["name"] == INCIDENT:
                cat = rec["attrs"].get("category", "?")
                incidents[cat] = incidents.get(cat, 0) + 1
    return {
        "records": len(records),
        "spans": spans,
        "events": events,
        "incidents": incidents,
        "t_min": t_min,
        "t_max": t_max,
    }
