"""``repro.telemetry`` — first-class observability for every tier.

The subsystem has three layers (DESIGN.md §8):

* a **metrics registry** (:mod:`~repro.telemetry.metrics`) — counters,
  gauges, fixed-bucket histograms; allocation-free no-ops when disabled;
* a **structured event/trace bus** (:mod:`~repro.telemetry.events`) —
  control rounds as span trees plus incident events, fanned to sinks
  (:mod:`~repro.telemetry.sinks`: bounded ring, JSONL trace writer);
* **exporters/consumers** — Prometheus text exposition over stdlib HTTP
  (:mod:`~repro.telemetry.prometheus`), the live ``anor top`` terminal view
  (:mod:`~repro.telemetry.top`), and ``anor trace`` offline export
  (:mod:`~repro.telemetry.schema` validates the format).

:class:`Telemetry` bundles one registry + one bus so instrumented code
takes a single handle.  ``NULL_TELEMETRY`` is the shared disabled instance:
the default everywhere, guaranteed overhead-free (golden traces stay
bit-identical with it installed, which `tests/test_telemetry_noop.py`
pins).
"""

from __future__ import annotations

from repro.telemetry.events import INCIDENT, NULL_BUS, EventBus
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sinks import JsonlTraceSink, RingBufferSink

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "EventBus",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RingBufferSink",
    "JsonlTraceSink",
    "DEFAULT_BUCKETS",
    "INCIDENT",
    "summarize_incidents",
]


class Telemetry:
    """One registry + one event bus, shared by every tier of a system."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        ring_size: int = 4096,
        trace_path: str | None = None,
    ) -> None:
        self.enabled = bool(enabled)
        if not self.enabled:
            self.registry = NULL_REGISTRY
            self.bus = NULL_BUS
            self.ring = None
            self.trace_sink = None
            return
        self.registry = MetricsRegistry()
        self.bus = EventBus()
        self.ring = RingBufferSink(ring_size)
        self.bus.add_sink(self.ring)
        self.trace_sink = None
        if trace_path is not None:
            self.trace_sink = JsonlTraceSink(trace_path)
            self.bus.add_sink(self.trace_sink)

    # Convenience pass-throughs so call sites read naturally.
    def incident(self, category: str, t: float, **attrs) -> None:
        self.bus.incident(category, t, **attrs)

    def event(self, name: str, t: float, **attrs) -> None:
        self.bus.event(name, t, **attrs)

    def incidents(self) -> list[dict]:
        return self.ring.incidents() if self.ring is not None else []

    @property
    def incident_counts(self) -> dict[str, int]:
        return dict(self.bus.incident_counts)

    def flush(self) -> None:
        """Push buffered records to disk without closing (idempotent)."""
        if self.trace_sink is not None:
            self.trace_sink.flush()

    def close(self) -> None:
        """Flush and close any file-backed sinks (idempotent)."""
        if self.trace_sink is not None:
            self.trace_sink.close()


#: The shared disabled instance — the default ``telemetry=`` everywhere.
NULL_TELEMETRY = Telemetry(enabled=False)


def summarize_incidents(counts: dict[str, int]) -> list[str]:
    """Render per-category incident totals as aligned table lines."""
    if not counts:
        return ["  (none)"]
    width = max(len(c) for c in counts)
    return [
        f"  {category:<{width}}  x{count}"
        for category, count in sorted(counts.items())
    ]
