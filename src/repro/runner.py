"""Parallel experiment runner: fan figure runs and seed sweeps over a pool.

Every experiment in this repository is a pure function of its arguments
(each run builds its own RNG from an explicit seed), so runs can execute in
any order — or concurrently — without changing their results.  This module
exploits that: it fans a list of :class:`ExperimentTask` over a
``multiprocessing`` pool and merges the outcomes back **in task order**, so
the rendered output of a parallel run is identical to the serial run, tick
for tick and digit for digit.

Determinism contract:

* every task carries its own explicit seed (no shared RNG streams, no
  worker-dependent state);
* ``Pool.map`` preserves input order, so merge order never depends on
  worker scheduling;
* a failing task is captured as an :class:`ExperimentOutcome` with its
  error string instead of tearing down the whole sweep non-deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Sequence

__all__ = ["ExperimentTask", "ExperimentOutcome", "run_tasks"]


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: a callable returning a rendered table string."""

    key: str  # display label, e.g. "fig9" or "fig11[seed=3]"
    fn: Callable[..., str]
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result of one task: its table (or the error that replaced it)."""

    key: str
    table: str | None
    elapsed: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _execute(task: ExperimentTask) -> ExperimentOutcome:
    start = time.perf_counter()
    try:
        table = task.fn(**task.kwargs)
    except Exception as exc:  # noqa: BLE001 — captured per task by design
        return ExperimentOutcome(
            key=task.key,
            table=None,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return ExperimentOutcome(
        key=task.key, table=table, elapsed=time.perf_counter() - start
    )


def run_tasks(
    tasks: Sequence[ExperimentTask],
    *,
    jobs: int = 1,
    mp_method: str | None = None,
) -> list[ExperimentOutcome]:
    """Run ``tasks``, optionally across ``jobs`` worker processes.

    Outcomes come back in task order regardless of completion order, so a
    ``jobs=N`` run renders identically to ``jobs=1`` (timings aside).
    ``mp_method`` picks the multiprocessing start method; the platform
    default (``fork`` on Linux) keeps worker start cheap.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be ≥ 1, got {jobs}")
    tasks = list(tasks)
    if jobs == 1 or len(tasks) <= 1:
        return [_execute(task) for task in tasks]
    ctx = get_context(mp_method)
    with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(_execute, tasks)
