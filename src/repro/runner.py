"""Parallel experiment runner: fan figure runs and seed sweeps over a pool.

Every experiment in this repository is a pure function of its arguments
(each run builds its own RNG from an explicit seed), so runs can execute in
any order — or concurrently — without changing their results.  This module
exploits that: it fans a list of :class:`ExperimentTask` over a
``multiprocessing`` pool and merges the outcomes back **in task order**, so
the rendered output of a parallel run is identical to the serial run, tick
for tick and digit for digit.

Determinism contract:

* every task carries its own explicit seed (no shared RNG streams, no
  worker-dependent state);
* ``Pool.map`` preserves input order, so merge order never depends on
  worker scheduling;
* a failing task is captured as an :class:`ExperimentOutcome` with its
  error string instead of tearing down the whole sweep non-deterministically.

Repeated fan-outs (``anor all``, seed sweeps) share one :class:`WorkerPool`
rather than paying worker start-up per batch, and large sweeps dispatch in
chunks so the IPC cost scales with the number of workers, not the number of
seeds.  Neither changes results: chunking only groups consecutive tasks and
``map`` still merges in input order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Sequence

__all__ = ["ExperimentTask", "ExperimentOutcome", "WorkerPool", "run_tasks"]


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: a callable returning a rendered table string."""

    key: str  # display label, e.g. "fig9" or "fig11[seed=3]"
    fn: Callable[..., str]
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result of one task: its table (or the error that replaced it)."""

    key: str
    table: str | None
    elapsed: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _execute(task: ExperimentTask) -> ExperimentOutcome:
    start = time.perf_counter()
    try:
        table = task.fn(**task.kwargs)
    except Exception as exc:  # noqa: BLE001 — captured per task by design
        return ExperimentOutcome(
            key=task.key,
            table=None,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return ExperimentOutcome(
        key=task.key, table=table, elapsed=time.perf_counter() - start
    )


def _chunksize(n_tasks: int, workers: int) -> int:
    """Dispatch granularity for a batch: a few chunks per worker.

    Seed sweeps can queue hundreds of tasks; sending them one message each
    makes the pool's IPC the bottleneck.  Four chunks per worker keeps the
    tail balanced (a slow chunk idles at most ~¼ of one worker's share)
    while cutting round trips by the chunk length.  Chunks are consecutive
    task runs and ``map`` merges in input order, so results are unchanged.
    """
    return max(1, n_tasks // (workers * 4))


class WorkerPool:
    """A reusable worker pool for successive :func:`run_tasks` batches.

    ``anor all`` and multi-batch sweeps reuse one pool across batches so
    worker start-up (interpreter fork, module import on spawn platforms) is
    paid once per process, not once per batch.  Use as a context manager::

        with WorkerPool(jobs=8) as pool:
            first = run_tasks(figure_tasks, pool=pool)
            second = run_tasks(sweep_tasks, pool=pool)

    With ``jobs=1`` no processes start and batches run inline — callers can
    hold one code path for serial and parallel runs.
    """

    def __init__(self, jobs: int = 1, *, mp_method: str | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be ≥ 1, got {jobs}")
        self.jobs = jobs
        self._pool = None
        if jobs > 1:
            self._pool = get_context(mp_method).Pool(processes=jobs)

    def map(self, tasks: list[ExperimentTask]) -> list[ExperimentOutcome]:
        """Execute one batch, inline or fanned out, in task order."""
        if self._pool is None or len(tasks) <= 1:
            return [_execute(task) for task in tasks]
        return self._pool.map(
            _execute, tasks, chunksize=_chunksize(len(tasks), self.jobs)
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def run_tasks(
    tasks: Sequence[ExperimentTask],
    *,
    jobs: int = 1,
    mp_method: str | None = None,
    pool: WorkerPool | None = None,
) -> list[ExperimentOutcome]:
    """Run ``tasks``, optionally across ``jobs`` worker processes.

    Outcomes come back in task order regardless of completion order, so a
    ``jobs=N`` run renders identically to ``jobs=1`` (timings aside).
    ``mp_method`` picks the multiprocessing start method; the platform
    default (``fork`` on Linux) keeps worker start cheap.  Passing an open
    :class:`WorkerPool` reuses its workers instead of starting fresh ones
    (``jobs``/``mp_method`` are then ignored).
    """
    tasks = list(tasks)
    if pool is not None:
        return pool.map(tasks)
    with WorkerPool(min(jobs, max(len(tasks), 1)), mp_method=mp_method) as owned:
        return owned.map(tasks)
