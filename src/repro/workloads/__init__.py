"""Synthetic NAS Parallel Benchmark job models and schedule generation.

The paper (§5.1) uses eight NPB job types as placeholders for application
phase behaviour.  We model each type's *true* time-per-epoch as a monotone
quadratic in the per-node CPU power cap, calibrated so the relative-slowdown
ordering and magnitudes match the paper's Fig. 3 (EP most power-sensitive,
IS least), and so the characterization fit R² scores land near the paper's
reported values (most ≥ 0.97; IS 0.92, MG 0.94, SP 0.84).
"""

from repro.workloads.nas import (
    NAS_TYPES,
    JobType,
    default_mix,
    get_job_type,
    long_running_mix,
    misclassification_trio,
)
from repro.workloads.generator import PoissonScheduleGenerator, arrival_rates_for_utilization
from repro.workloads.trace import JobRequest, Schedule, load_schedule, save_schedule

__all__ = [
    "NAS_TYPES",
    "JobType",
    "default_mix",
    "get_job_type",
    "long_running_mix",
    "misclassification_trio",
    "PoissonScheduleGenerator",
    "arrival_rates_for_utilization",
    "JobRequest",
    "Schedule",
    "load_schedule",
    "save_schedule",
]
