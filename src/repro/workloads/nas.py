"""Catalog of synthetic NAS Parallel Benchmark job types (paper §5.1, Fig. 3).

Each :class:`JobType` carries the *ground-truth* power-performance curve used
by the hardware emulator and the tabular simulator.  The control plane never
reads these curves directly — it learns them through characterization runs or
online epoch feedback, exactly as the paper's cluster does.

Calibration notes
-----------------
* Per-node cap range is 140–280 W: the test platform has two packages with a
  70 W floor and 140 W TDP each (§5.5, §6.1.1).
* ``sensitivity`` is the relative execution time at the minimum cap
  (Fig. 3's y-axis at 140 W).  EP is most sensitive, IS least, matching the
  roles those types play in the misclassification studies (§6.1.2).
* ``noise`` is the relative σ of per-epoch timing noise in the emulator;
  values are calibrated so characterization R² lands near the paper's
  reported scores (most ≥ 0.97; IS 0.92, MG 0.94, SP 0.84).
* IS and EP run for well under half a minute; §7.2 explains how their
  setup/teardown dominance perturbs cluster measurements, which is why the
  final schedules (Figs. 9–11) exclude them — we reproduce both the effect
  and the exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.modeling.quadratic import QuadraticPowerModel

__all__ = [
    "P_NODE_MIN",
    "P_NODE_MAX",
    "IDLE_NODE_POWER",
    "JobType",
    "NAS_TYPES",
    "get_job_type",
    "default_mix",
    "long_running_mix",
    "misclassification_trio",
]

#: Minimum enforceable per-node CPU power cap (2 packages × 70 W floor).
P_NODE_MIN = 140.0
#: Maximum per-node CPU power cap (2 packages × 140 W TDP).
P_NODE_MAX = 280.0
#: CPU power drawn by an idle node (also during job setup/teardown, §7.2).
IDLE_NODE_POWER = 60.0


@dataclass(frozen=True)
class JobType:
    """Ground-truth description of one benchmark job type.

    Attributes
    ----------
    name:
        Short benchmark name (``"bt"`` … ``"sp"``).
    nas_name:
        Full paper-style identifier, e.g. ``"bt.D.x"``.
    nodes:
        Default compute-node count per instance in the cluster experiments.
    epochs:
        Main-loop iterations; one ``prof_epoch()`` call per iteration.
    t_uncapped:
        Compute time (s) at the maximum cap, excluding setup/teardown.
    sensitivity:
        Relative execution time at the minimum cap (≥ 1).
    p_demand:
        Per-node CPU power draw (W) when unconstrained; caps above this are
        not binding.
    noise:
        Relative σ of per-epoch execution-time noise.
    setup_time / teardown_time:
        Seconds spent at idle power before/after compute (batch-system and
        application setup; §7.2).
    """

    name: str
    nas_name: str
    nodes: int
    epochs: int
    t_uncapped: float
    sensitivity: float
    p_demand: float
    noise: float
    setup_time: float = 5.0
    teardown_time: float = 3.0
    p_min: float = P_NODE_MIN
    p_max: float = P_NODE_MAX
    #: Relative amplitude of the epoch-periodic power signature.  Real codes'
    #: draw oscillates within each main-loop iteration (compute vs. exchange
    #: phases); §8's automatic epoch detection exploits exactly that.  Zero
    #: (the default) keeps the paper-reproduction workloads unmodulated.
    power_wave: float = 0.0
    _truth: QuadraticPowerModel = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"{self.name}: nodes must be ≥ 1")
        if self.epochs < 1:
            raise ValueError(f"{self.name}: epochs must be ≥ 1")
        if not self.p_min < self.p_demand <= self.p_max:
            raise ValueError(
                f"{self.name}: p_demand {self.p_demand} outside ({self.p_min}, {self.p_max}]"
            )
        truth = QuadraticPowerModel.from_anchors(
            t_at_max=self.t_uncapped / self.epochs,
            sensitivity=self.sensitivity,
            p_min=self.p_min,
            # The curve flattens where the cap stops binding.
            p_max=self.p_demand,
        )
        object.__setattr__(self, "_truth", truth)

    # ------------------------------------------------------------- the truth

    @property
    def truth(self) -> QuadraticPowerModel:
        """Ground-truth time-per-epoch model (valid caps clamp to p_demand)."""
        return self._truth

    def time_per_epoch(self, p_cap: float | np.ndarray) -> float | np.ndarray:
        """True seconds per epoch under per-node cap ``p_cap``."""
        if isinstance(p_cap, (int, float)):
            # Scalar fast path: the emulator and tabular simulator call this
            # per rank per tick, where np.clip's array machinery dominates.
            p = self.p_min if p_cap < self.p_min else (
                self.p_demand if p_cap > self.p_demand else p_cap
            )
            return self._truth.time_per_epoch(float(p))
        return self._truth.time_per_epoch(np.clip(p_cap, self.p_min, self.p_demand))

    def time_per_epoch_at(self, p_cap: float, progress: float) -> float:
        """Seconds/epoch at cap ``p_cap`` at lifecycle ``progress`` ∈ [0, 1].

        The base type is phase-less, so progress is ignored;
        :class:`~repro.workloads.phased.PhasedJobType` overrides this.
        """
        return float(self.time_per_epoch(float(p_cap)))

    def power_demand_at(self, progress: float) -> float:
        """Unconstrained per-node draw at lifecycle ``progress`` (phase-less)."""
        return self.p_demand

    def time_per_epoch_array(
        self, p_caps: np.ndarray, progress: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`time_per_epoch_at` over per-rank caps.

        The base type is phase-less so ``progress`` is ignored; the clamp
        and quadratic evaluate elementwise with the exact operations of the
        scalar path, keeping the emulator's batched physics bit-identical.
        :class:`~repro.workloads.phased.PhasedJobType` overrides this with a
        per-element phase lookup.
        """
        return np.asarray(self.time_per_epoch(np.asarray(p_caps, dtype=float)))

    def power_demand_array(self, progress: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`power_demand_at` (constant for phase-less types)."""
        return np.full(np.shape(progress), self.p_demand)

    @property
    def profile_static(self) -> bool:
        """True when the power/performance profile is constant over a job's life.

        The event-driven stepper strides across control-free ticks only when
        every per-tick input other than noise is constant: no epoch-periodic
        power wave, and the phase-less ``time_per_epoch_array`` /
        ``power_demand_array`` (which ignore ``progress``).  Subclasses that
        override either method — :class:`~repro.workloads.phased.PhasedJobType`
        looks up a per-element phase table — are detected by method identity
        and automatically fall back to per-tick stepping.
        """
        return (
            self.power_wave == 0.0
            and type(self).time_per_epoch_array is JobType.time_per_epoch_array
            and type(self).power_demand_array is JobType.power_demand_array
        )

    def compute_time(self, p_cap: float) -> float:
        """True compute seconds (epochs × time/epoch) under cap ``p_cap``."""
        return self.epochs * float(self.time_per_epoch(float(p_cap)))

    def total_time(self, p_cap: float) -> float:
        """Wall-clock occupancy including setup and teardown."""
        return self.setup_time + self.compute_time(p_cap) + self.teardown_time

    def relative_time(self, p_cap: float | np.ndarray) -> float | np.ndarray:
        """Execution time relative to the max-cap time (Fig. 3's y-axis)."""
        return self.time_per_epoch(p_cap) / self.time_per_epoch(self.p_max)

    def slowdown(self, p_cap: float) -> float:
        """Fractional compute slowdown vs. running uncapped (≥ 0)."""
        return float(self.relative_time(float(p_cap))) - 1.0

    def power_at_cap(self, p_cap: float) -> float:
        """CPU power (W/node) actually drawn under cap ``p_cap``."""
        return float(min(max(p_cap, self.p_min), self.p_demand))

    # ------------------------------------------------------------ convenience

    @property
    def t_min(self) -> float:
        """Fastest total time (uncapped), the QoS reference T_min (§5.2)."""
        return self.total_time(self.p_max)

    @property
    def t_at_min_cap(self) -> float:
        """Total time at the minimum cap (maximum slowdown point)."""
        return self.total_time(self.p_min)

    def scaled_nodes(self, factor: int) -> "JobType":
        """Same job type at ``factor``× the node count (Fig. 11 uses 25×)."""
        if factor < 1:
            raise ValueError(f"factor must be ≥ 1, got {factor}")
        return replace(self, nodes=self.nodes * factor)

    def with_nodes(self, nodes: int) -> "JobType":
        """Same job type pinned to an explicit node count (Fig. 5 mixes)."""
        return replace(self, nodes=nodes)


def _catalog() -> dict[str, JobType]:
    spec = [
        # name nodes epochs t_unc  sens  p_dem noise
        ("bt", 2, 200, 300.0, 1.65, 272.0, 0.012),
        ("cg", 1, 75, 180.0, 1.30, 250.0, 0.011),
        ("ep", 1, 16, 25.0, 1.80, 278.0, 0.010),
        ("ft", 2, 40, 120.0, 1.45, 264.0, 0.011),
        ("is", 1, 10, 20.0, 1.08, 235.0, 0.006),
        ("lu", 1, 250, 280.0, 1.55, 268.0, 0.012),
        ("mg", 1, 50, 90.0, 1.22, 246.0, 0.014),
        ("sp", 2, 400, 320.0, 1.12, 240.0, 0.018),
    ]
    return {
        name: JobType(
            name=name,
            nas_name=f"{name}.D.x",
            nodes=nodes,
            epochs=epochs,
            t_uncapped=t_unc,
            sensitivity=sens,
            p_demand=p_dem,
            noise=noise,
        )
        for name, nodes, epochs, t_unc, sens, p_dem, noise in spec
    }


#: All eight NPB job types, keyed by short name.
NAS_TYPES: dict[str, JobType] = _catalog()


def get_job_type(name: str) -> JobType:
    """Look up a job type by short (``"bt"``) or full (``"bt.D.x"``) name."""
    key = name.split(".")[0].lower()
    try:
        return NAS_TYPES[key]
    except KeyError:
        raise KeyError(
            f"unknown job type {name!r}; known: {sorted(NAS_TYPES)}"
        ) from None


def default_mix() -> list[JobType]:
    """All eight job types (Fig. 4's one-of-each scenario)."""
    return [NAS_TYPES[k] for k in sorted(NAS_TYPES)]


def long_running_mix() -> list[JobType]:
    """The six minutes-or-longer types used in Figs. 9–11 (no IS/EP, §7.2)."""
    return [NAS_TYPES[k] for k in sorted(NAS_TYPES) if k not in ("is", "ep")]


def misclassification_trio() -> tuple[JobType, JobType, JobType]:
    """(low, medium, high) power-sensitivity types of Fig. 5: IS, FT, EP."""
    return NAS_TYPES["is"], NAS_TYPES["ft"], NAS_TYPES["ep"]
