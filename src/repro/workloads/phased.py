"""Multi-phase job types (paper §8).

"Some jobs may consist of multiple power-sensitivity profiles through the
job's lifecycle."  A :class:`PhasedJobType` partitions a job's epochs into
consecutive phases, each with its own power sensitivity and power demand —
e.g. a simulation phase (compute-bound, sensitive) followed by an in-situ
analysis phase (memory-bound, insensitive).  The single precharacterized
``truth`` model of the base class then describes only the *average*
behaviour, which is exactly the modeling gap the paper's future work calls
out; the online modeler's drift detection (``detect_drift=True``) closes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modeling.quadratic import QuadraticPowerModel
from repro.workloads.nas import JobType

__all__ = ["PhaseSpec", "PhasedJobType", "make_two_phase_type"]


@dataclass(frozen=True)
class PhaseSpec:
    """One lifecycle phase: a fraction of the job's epochs with its own curve."""

    fraction: float  # share of the job's epochs, in (0, 1]
    sensitivity: float  # relative time at the minimum cap, ≥ 1
    p_demand: float  # per-node power draw when unconstrained

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.sensitivity < 1.0:
            raise ValueError(f"sensitivity must be ≥ 1, got {self.sensitivity}")


@dataclass(frozen=True)
class PhasedJobType(JobType):
    """A job type whose power-performance profile changes across phases.

    The inherited scalar ``sensitivity``/``p_demand`` describe the
    epoch-weighted average (what offline characterization would see); the
    phase list drives the emulator's actual behaviour.
    """

    phases: tuple[PhaseSpec, ...] = ()
    _phase_models: tuple[QuadraticPowerModel, ...] = field(
        init=False, repr=False, compare=False, default=()
    )
    _phase_bounds: tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.phases:
            raise ValueError(f"{self.name}: a phased type needs ≥ 1 phase")
        total = sum(p.fraction for p in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"{self.name}: phase fractions must sum to 1, got {total}"
            )
        for p in self.phases:
            if not self.p_min < p.p_demand <= self.p_max:
                raise ValueError(
                    f"{self.name}: phase p_demand {p.p_demand} outside range"
                )
        tau_base = self.t_uncapped / self.epochs
        models = tuple(
            QuadraticPowerModel.from_anchors(
                t_at_max=tau_base,
                sensitivity=p.sensitivity,
                p_min=self.p_min,
                p_max=p.p_demand,
            )
            for p in self.phases
        )
        bounds = tuple(np.cumsum([p.fraction for p in self.phases]))
        object.__setattr__(self, "_phase_models", models)
        object.__setattr__(self, "_phase_bounds", bounds)

    # ----------------------------------------------------------- phase logic

    def phase_index(self, progress: float) -> int:
        """Which phase a job is in at epoch-progress fraction ``progress``."""
        progress = min(max(progress, 0.0), 1.0)
        for i, bound in enumerate(self._phase_bounds):
            if progress < bound or bound == self._phase_bounds[-1]:
                return i
        return len(self.phases) - 1  # pragma: no cover - loop always returns

    def time_per_epoch_at(self, p_cap: float, progress: float) -> float:
        """True seconds/epoch at cap ``p_cap`` while at ``progress`` ∈ [0, 1]."""
        i = self.phase_index(progress)
        phase = self.phases[i]
        cap = float(np.clip(p_cap, self.p_min, phase.p_demand))
        return float(self._phase_models[i].time_per_epoch(cap))

    def power_demand_at(self, progress: float) -> float:
        """Per-node unconstrained draw during the current phase."""
        return self.phases[self.phase_index(progress)].p_demand

    def time_per_epoch_array(
        self, p_caps: np.ndarray, progress: np.ndarray
    ) -> np.ndarray:
        """Per-element phase lookup; ranks of one job may straddle a phase
        boundary, so the batched path cannot assume a single curve."""
        return np.array(
            [
                self.time_per_epoch_at(float(c), float(f))
                for c, f in zip(p_caps, progress)
            ]
        )

    def power_demand_array(self, progress: np.ndarray) -> np.ndarray:
        return np.array([self.power_demand_at(float(f)) for f in progress])

    def phase_model(self, index: int) -> QuadraticPowerModel:
        return self._phase_models[index]


def make_two_phase_type(
    name: str = "px",
    *,
    nodes: int = 2,
    epochs: int = 200,
    t_uncapped: float = 300.0,
    first: PhaseSpec = PhaseSpec(0.5, 1.7, 272.0),
    second: PhaseSpec = PhaseSpec(0.5, 1.1, 235.0),
    noise: float = 0.012,
) -> PhasedJobType:
    """A simulation+analysis style job: sensitive first half, flat second."""
    avg_sens = first.fraction * first.sensitivity + second.fraction * second.sensitivity
    avg_demand = first.fraction * first.p_demand + second.fraction * second.p_demand
    return PhasedJobType(
        name=name,
        nas_name=f"{name}.D.x",
        nodes=nodes,
        epochs=epochs,
        t_uncapped=t_uncapped,
        sensitivity=avg_sens,
        p_demand=avg_demand,
        noise=noise,
        phases=(first, second),
    )
