"""Job-schedule records and file I/O.

The paper's cluster-tier process "reads power targets and a job submission
schedule from files" for experimental repeatability (§4.1).  This module
defines the schedule record type and a simple CSV format so experiments can
round-trip schedules to disk.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["JobRequest", "Schedule", "save_schedule", "load_schedule"]


@dataclass(frozen=True)
class JobRequest:
    """A single job submission: when, what, and how many nodes."""

    submit_time: float
    job_id: str
    type_name: str
    nodes: int

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"submit_time must be ≥ 0, got {self.submit_time}")
        if self.nodes < 1:
            raise ValueError(f"nodes must be ≥ 1, got {self.nodes}")


@dataclass
class Schedule:
    """An ordered collection of job submissions over a time window."""

    requests: list[JobRequest] = field(default_factory=list)
    duration: float = 0.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: (r.submit_time, r.job_id))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[JobRequest]:
        return iter(self.requests)

    def between(self, t0: float, t1: float) -> list[JobRequest]:
        """Submissions with t0 ≤ submit_time < t1."""
        return [r for r in self.requests if t0 <= r.submit_time < t1]

    def type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.requests:
            counts[r.type_name] = counts.get(r.type_name, 0) + 1
        return counts

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


_FIELDS = ["submit_time", "job_id", "type_name", "nodes"]


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS + ["duration", "start_time"])
        for i, req in enumerate(schedule.requests):
            extras = (
                [repr(schedule.duration), repr(schedule.start_time)] if i == 0 else ["", ""]
            )
            writer.writerow(
                [repr(req.submit_time), req.job_id, req.type_name, req.nodes] + extras
            )
        if not schedule.requests:
            writer.writerow(["", "", "", "", repr(schedule.duration), repr(schedule.start_time)])


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule written by :func:`save_schedule`."""
    path = Path(path)
    requests: list[JobRequest] = []
    duration = 0.0
    start_time = 0.0
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or header[: len(_FIELDS)] != _FIELDS:
            raise ValueError(f"{path}: not a schedule file (header {header!r})")
        for row in reader:
            if len(row) >= 6 and row[4]:
                duration = float(row[4])
                start_time = float(row[5])
            if row[0] == "":
                continue
            requests.append(
                JobRequest(
                    submit_time=float(row[0]),
                    job_id=row[1],
                    type_name=row[2],
                    nodes=int(row[3]),
                )
            )
    return Schedule(requests=requests, duration=duration, start_time=start_time)
