"""Poisson job-schedule generation targeting a node utilization (paper §5.3).

Job submissions per type are independent Poisson processes.  Arrival rates
are chosen so the expected node-seconds demanded per second equals the target
utilization ``η`` of the ``N``-node cluster:

    Σ_j λ_j · n_j · T_j = η · N,

where ``n_j`` is the type's node count and ``T_j`` its non-power-capped time
to completion.  By default every type receives an equal share of the demand.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.rng import ensure_rng
from repro.workloads.nas import JobType
from repro.workloads.trace import JobRequest, Schedule

__all__ = ["arrival_rates_for_utilization", "PoissonScheduleGenerator"]


def arrival_rates_for_utilization(
    job_types: Sequence[JobType],
    utilization: float,
    total_nodes: int,
    *,
    shares: Sequence[float] | None = None,
) -> dict[str, float]:
    """Per-type Poisson arrival rates (jobs/s) achieving ``utilization``.

    ``shares`` optionally weights how the total node-seconds demand is split
    across types (normalized internally); default is an equal split.
    """
    if not job_types:
        raise ValueError("need at least one job type")
    if not 0.0 < utilization:
        raise ValueError(f"utilization must be positive, got {utilization}")
    if total_nodes < 1:
        raise ValueError(f"total_nodes must be ≥ 1, got {total_nodes}")
    if shares is None:
        shares_arr = np.ones(len(job_types))
    else:
        shares_arr = np.asarray(shares, dtype=float)
        if shares_arr.shape != (len(job_types),):
            raise ValueError(
                f"shares must match job_types: {shares_arr.shape} vs {len(job_types)}"
            )
        if np.any(shares_arr < 0) or shares_arr.sum() == 0:
            raise ValueError("shares must be non-negative and not all zero")
    shares_arr = shares_arr / shares_arr.sum()
    demand = utilization * total_nodes  # node-seconds per second to fill
    rates: dict[str, float] = {}
    for jt, share in zip(job_types, shares_arr):
        node_seconds = jt.nodes * jt.t_min
        rates[jt.name] = demand * float(share) / node_seconds
    return rates


class PoissonScheduleGenerator:
    """Draws reproducible job schedules from per-type Poisson processes."""

    def __init__(
        self,
        job_types: Sequence[JobType],
        utilization: float,
        total_nodes: int,
        *,
        shares: Sequence[float] | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.job_types = list(job_types)
        self.total_nodes = int(total_nodes)
        self.utilization = float(utilization)
        self.rates = arrival_rates_for_utilization(
            self.job_types, utilization, total_nodes, shares=shares
        )
        self._rng = ensure_rng(seed)
        oversized = [jt.name for jt in self.job_types if jt.nodes > total_nodes]
        if oversized:
            raise ValueError(
                f"job types larger than the cluster ({total_nodes} nodes): {oversized}"
            )

    def generate(self, duration: float, *, start_time: float = 0.0) -> Schedule:
        """Generate all submissions in [start_time, start_time + duration)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        requests: list[JobRequest] = []
        for jt in self.job_types:
            rate = self.rates[jt.name]
            t = start_time
            while True:
                # Exponential inter-arrival times ⇒ Poisson process.
                t += float(self._rng.exponential(1.0 / rate))
                if t >= start_time + duration:
                    break
                requests.append(
                    JobRequest(
                        submit_time=t,
                        job_id="",  # assigned after global ordering below
                        type_name=jt.name,
                        nodes=jt.nodes,
                    )
                )
        requests.sort(key=lambda r: (r.submit_time, r.type_name))
        numbered = [
            JobRequest(
                submit_time=r.submit_time,
                job_id=f"job-{i:05d}.{r.type_name}",
                type_name=r.type_name,
                nodes=r.nodes,
            )
            for i, r in enumerate(requests)
        ]
        return Schedule(requests=numbered, duration=duration, start_time=start_time)

    def expected_jobs(self, duration: float) -> float:
        """Expected number of submissions over ``duration`` seconds."""
        return sum(self.rates.values()) * duration
