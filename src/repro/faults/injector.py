"""The fault injector: drives a :class:`FaultSchedule` against a system.

The injector is installed by :class:`~repro.core.framework.AnorSystem` when
it is built with a ``fault_schedule``; the system calls :meth:`tick` once
per simulated second, before the control plane runs, so a fault landing at
tick *t* shapes the very next budgeting round — the same ordering a real
crash has relative to the manager's periodic loop.

Everything is deterministic: events fire in schedule order, targets chosen
at fire time (``job_id=None`` events) are resolved by sorted job id, and
window resolutions (link restored, node rejoins, meter back) run in
(time, insertion) order.  The resulting :attr:`log` is bit-identical for a
given (seed, schedule) pair — the property the resilience benchmark pins.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.core.messages import StatusMessage
from repro.core.targets import HoldLastGoodTarget, PowerTargetSource
from repro.faults.events import (
    CorruptStatus,
    EndpointCrash,
    FaultEvent,
    HeadNodeCrash,
    HeadNodeRestart,
    LinkDegradation,
    MeterOutage,
    NetworkPartition,
    NodeCrash,
    PartitionEnd,
    PartitionStart,
    TargetOutage,
)
from repro.faults.schedule import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.framework import AnorSystem

__all__ = ["FaultInjector"]


class _SwitchableTarget(PowerTargetSource):
    """Passes through to ``inner`` unless switched into outage (NaN)."""

    def __init__(self, inner: PowerTargetSource) -> None:
        self.inner = inner
        self.down = False

    def target(self, now: float) -> float:
        if self.down:
            return math.nan
        return self.inner.target(now)


class FaultInjector:
    """Applies scheduled faults to a running :class:`AnorSystem`."""

    def __init__(self, system: "AnorSystem", schedule: FaultSchedule) -> None:
        self.system = system
        self.schedule = schedule
        self.log: list[str] = []
        self._pending: list[FaultEvent] = list(schedule.events)
        # (resolve_time, seq, log_line, action) — seq keeps resolution order
        # deterministic when two windows close on the same tick.
        self._resolutions: list[tuple[float, int, str, Callable[[], None]]] = []
        self._seq = 0
        self._meter_down = False
        self._install_meter_hook()
        self._target_switch = self._install_target_hook()

    # ------------------------------------------------------------ plumbing

    def _install_meter_hook(self) -> None:
        inner = self.system.manager.meter
        if inner is None:
            return

        def metered() -> float:
            return math.nan if self._meter_down else float(inner())

        self.system.manager.meter = metered

    def _install_target_hook(self) -> _SwitchableTarget:
        hold = self.system.manager.target_source
        if not isinstance(hold, HoldLastGoodTarget):  # pragma: no cover - guard
            raise TypeError("manager target source must be a HoldLastGoodTarget")
        switch = _SwitchableTarget(hold.inner)
        hold.inner = switch
        return switch

    def reattach(self) -> None:
        """Re-hook a freshly built manager (head-node restart path).

        The meter and target hooks wrap objects owned by the manager, so a
        new manager needs new hooks; fault *state* (meter down, target down,
        open windows) lives in the injector and carries across — an outage
        window spanning the head-node restart keeps the restarted head
        degraded until the window closes.
        """
        self._install_meter_hook()
        switch = self._install_target_hook()
        switch.down = self._target_switch.down
        self._target_switch = switch

    def _record(self, now: float, line: str) -> None:
        self.log.append(f"t={now:10.1f} {line}")
        telemetry = self.system.telemetry
        if telemetry.enabled:
            # Every injected fault (and window resolution) doubles as an
            # incident on the event bus.  The "fault:" prefix marks these as
            # *injected* causes; unprefixed categories are effects observed
            # by the framework (eviction, meter-fault, head-restart ...).
            telemetry.incident(f"fault:{line.split(None, 1)[0]}", now, detail=line)

    def _defer(self, at: float, line: str, action: Callable[[], None]) -> None:
        self._resolutions.append((at, self._seq, line, action))
        self._seq += 1

    # ------------------------------------------------------------- driving

    def tick(self, now: float) -> None:
        """Fire every event and resolution due at or before ``now``."""
        due_res = sorted(
            (r for r in self._resolutions if r[0] <= now), key=lambda r: (r[0], r[1])
        )
        if due_res:
            self._resolutions = [r for r in self._resolutions if r[0] > now]
            for _, _, line, action in due_res:
                action()
                self._record(now, line)
        while self._pending and self._pending[0].time <= now:
            event = self._pending.pop(0)
            self._fire(event, now)

    @property
    def quiescent(self) -> bool:
        """True once every event has fired and every window has closed."""
        return not self._pending and not self._resolutions

    @property
    def next_due(self) -> float:
        """Earliest instant :meth:`tick` would act; +inf when quiescent.

        Both firing rules are ``time <= now`` checks, so a tick strictly
        before this instant is a guaranteed no-op — the event-driven loop
        uses that to stride across fault-free stretches.
        """
        due = math.inf
        if self._pending:
            due = self._pending[0].time
        for resolution in self._resolutions:
            if resolution[0] < due:
                due = resolution[0]
        return due

    def log_lines(self) -> list[str]:
        return list(self.log)

    def render(self) -> str:
        return "\n".join(self.log)

    # -------------------------------------------------------------- events

    def _fire(self, event: FaultEvent, now: float) -> None:
        if isinstance(event, NodeCrash):
            self._fire_node_crash(event, now)
        elif isinstance(event, HeadNodeCrash):
            self._fire_head_crash(event, now)
        elif isinstance(event, HeadNodeRestart):
            self._fire_head_restart(now)
        elif isinstance(event, EndpointCrash):
            self._fire_endpoint_crash(event, now)
        elif isinstance(event, LinkDegradation):
            self._fire_link_degradation(event, now)
        elif isinstance(event, MeterOutage):
            self._meter_down = True
            self._record(now, f"meter-outage start duration={event.duration:.1f}")
            self._defer(now + event.duration, "meter-outage end", self._meter_up)
        elif isinstance(event, TargetOutage):
            self._target_switch.down = True
            self._record(now, f"target-outage start duration={event.duration:.1f}")
            self._defer(now + event.duration, "target-outage end", self._target_up)
        elif isinstance(event, NetworkPartition):
            self._fire_partition(event, now)
        elif isinstance(event, (PartitionStart, PartitionEnd)):
            # Observational records emitted by the reliable-messaging layer;
            # scheduling one is a category error, not a silent no-op.
            raise TypeError(
                f"{type(event).__name__} is an observed record, not a schedulable "
                "fault; inject NetworkPartition instead"
            )
        elif isinstance(event, CorruptStatus):
            self._fire_corrupt_status(event, now)
        else:  # pragma: no cover - exhaustive over the vocabulary
            raise TypeError(f"unknown fault event {event!r}")

    def _meter_up(self) -> None:
        self._meter_down = False

    def _target_up(self) -> None:
        self._target_switch.down = False

    def _fire_node_crash(self, event: NodeCrash, now: float) -> None:
        cluster = self.system.cluster
        if event.node_id >= cluster.num_nodes:
            self._record(now, f"node-crash node={event.node_id} skipped (no such node)")
            return
        if cluster.nodes[event.node_id].failed:
            self._record(now, f"node-crash node={event.node_id} skipped (already down)")
            return
        killed = self.system.crash_node(event.node_id, now)
        self._record(
            now,
            f"node-crash node={event.node_id} killed={killed or '-'} "
            f"down_for={event.down_for:.1f}",
        )
        if math.isfinite(event.down_for):
            node_id = event.node_id
            self._defer(
                now + event.down_for,
                f"node-restore node={node_id}",
                lambda: cluster.restore_node(node_id),
            )

    def _fire_head_crash(self, event: HeadNodeCrash, now: float) -> None:
        if not self.system.crash_head_node(now):
            self._record(now, "head-crash skipped (already down)")
            return
        self._record(now, f"head-crash down_for={event.down_for:.1f}")
        if math.isfinite(event.down_for):
            self._defer(
                now + event.down_for,
                "head-restart",
                lambda: self.system.restart_head_node(),
            )

    def _fire_head_restart(self, now: float) -> None:
        if not self.system.restart_head_node(now):
            self._record(now, "head-restart skipped (head already up)")
            return
        self._record(now, "head-restart")

    def _pick_job(self, job_id: str | None, now: float) -> str | None:
        if job_id is not None:
            return job_id
        live = sorted(self.system.endpoints)
        return live[0] if live else None

    def _fire_endpoint_crash(self, event: EndpointCrash, now: float) -> None:
        job_id = self._pick_job(event.job_id, now)
        if job_id is None or job_id not in self.system.endpoints:
            self._record(now, "endpoint-crash skipped (no live endpoint)")
            return
        self.system.crash_endpoint(job_id, now)
        self._record(now, f"endpoint-crash job={job_id}")

    def _fire_link_degradation(self, event: LinkDegradation, now: float) -> None:
        system = self.system
        if event.job_id is None:
            cfg = system.config
            saved = (
                cfg.link_drop_probability,
                cfg.link_latency_up,
                cfg.link_latency_down,
            )
            cfg.link_drop_probability = event.drop_probability
            if event.extra_latency > 0:
                base = cfg.link_latency
                cfg.link_latency_up = (
                    saved[1] if saved[1] is not None else base
                ) + event.extra_latency
                cfg.link_latency_down = (
                    saved[2] if saved[2] is not None else base
                ) + event.extra_latency
            for endpoint in system.endpoints.values():
                self._degrade_link(endpoint.link, event)
            self._record(
                now,
                f"link-degrade start scope=all drop={event.drop_probability:.3f} "
                f"extra_latency={event.extra_latency:.3f} duration={event.duration:.1f}",
            )

            def restore() -> None:
                (
                    cfg.link_drop_probability,
                    cfg.link_latency_up,
                    cfg.link_latency_down,
                ) = saved
                for endpoint in system.endpoints.values():
                    self._restore_link(endpoint.link, saved)

            self._defer(now + event.duration, "link-degrade end scope=all", restore)
            return
        endpoint = system.endpoints.get(event.job_id)
        if endpoint is None:
            self._record(
                now, f"link-degrade job={event.job_id} skipped (no live endpoint)"
            )
            return
        cfg = system.config
        saved = (cfg.link_drop_probability, cfg.link_latency_up, cfg.link_latency_down)
        link = endpoint.link
        self._degrade_link(link, event)
        self._record(
            now,
            f"link-degrade start job={event.job_id} "
            f"drop={event.drop_probability:.3f} "
            f"extra_latency={event.extra_latency:.3f} duration={event.duration:.1f}",
        )
        self._defer(
            now + event.duration,
            f"link-degrade end job={event.job_id}",
            lambda: self._restore_link(link, saved),
        )

    def _fire_partition(self, event: NetworkPartition, now: float) -> None:
        system = self.system
        if event.job_id is None:
            # Cluster-wide cut: every live link blackholes, and links created
            # while the window is open are born partitioned (the config flag
            # covers reconnect attempts during the outage).
            system.config.link_partitioned = True
            for endpoint in system.endpoints.values():
                self._set_partitioned(endpoint.link, True)
            self._record(
                now, f"partition start scope=all duration={event.duration:.1f}"
            )

            def heal() -> None:
                system.config.link_partitioned = False
                for endpoint in system.endpoints.values():
                    self._set_partitioned(endpoint.link, False)

            self._defer(now + event.duration, "partition end scope=all", heal)
            return
        endpoint = system.endpoints.get(event.job_id)
        if endpoint is None:
            self._record(
                now, f"partition job={event.job_id} skipped (no live endpoint)"
            )
            return
        link = endpoint.link
        self._set_partitioned(link, True)
        self._record(
            now, f"partition start job={event.job_id} duration={event.duration:.1f}"
        )
        self._defer(
            now + event.duration,
            f"partition end job={event.job_id}",
            lambda: self._set_partitioned(link, False),
        )

    def _set_partitioned(self, link, value: bool) -> None:
        link.up.partitioned = value
        link.down.partitioned = value

    def _degrade_link(self, link, event: LinkDegradation) -> None:
        link.up.drop_probability = event.drop_probability
        link.down.drop_probability = event.drop_probability
        if event.extra_latency > 0:
            link.up.latency += event.extra_latency
            link.down.latency += event.extra_latency

    def _restore_link(self, link, saved: tuple) -> None:
        drop, lat_up, lat_down = saved
        base = self.system.config.link_latency
        link.up.drop_probability = drop
        link.down.drop_probability = drop
        link.up.latency = base if lat_up is None else lat_up
        link.down.latency = base if lat_down is None else lat_down

    def _fire_corrupt_status(self, event: CorruptStatus, now: float) -> None:
        job_id = self._pick_job(event.job_id, now)
        endpoint = self.system.endpoints.get(job_id) if job_id is not None else None
        if endpoint is None:
            self._record(now, "corrupt-status skipped (no live endpoint)")
            return
        bad = {"model_r2": 0.99}
        power = float(endpoint.nodes * 200.0)
        if event.kind == "nan":
            bad.update(model_a=math.nan, model_b=math.nan, model_c=math.nan)
        elif event.kind == "inf":
            bad.update(model_a=math.inf, model_b=-math.inf, model_c=math.inf)
        elif event.kind == "nonphysical":
            # T rising with P: budgeting on this would starve the job hardest
            # exactly when power is plentiful.
            bad.update(model_a=0.0, model_b=0.05, model_c=0.1)
        elif event.kind == "nan-power":
            bad = {}
            power = math.nan
        msg = StatusMessage(
            job_id=job_id,
            timestamp=now,
            epoch_count=0,
            measured_power=power,
            applied_cap=200.0,
            **bad,
        )
        endpoint.link.send_up(msg, now)
        self._record(now, f"corrupt-status job={job_id} kind={event.kind}")
