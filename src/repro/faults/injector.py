"""The fault injector: drives a :class:`FaultSchedule` against a system.

The injector is installed by :class:`~repro.core.framework.AnorSystem` when
it is built with a ``fault_schedule``; the system calls :meth:`tick` once
per simulated second, before the control plane runs, so a fault landing at
tick *t* shapes the very next budgeting round — the same ordering a real
crash has relative to the manager's periodic loop.

Everything is deterministic: events fire in schedule order, targets chosen
at fire time (``job_id=None`` events) are resolved by sorted job id, and
window resolutions (link restored, node rejoins, meter back) run in
(time, insertion) order.  The resulting :attr:`log` is bit-identical for a
given (seed, schedule) pair — the property the resilience benchmark pins.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.core.messages import StatusMessage
from repro.core.targets import HoldLastGoodTarget, PowerTargetSource
from repro.faults.events import (
    ByzantineModel,
    CorruptStatus,
    DemandResponseEmergency,
    EndpointCrash,
    FaultEvent,
    FeederLoss,
    HeadNodeCrash,
    HeadNodeRestart,
    LinkDegradation,
    MeterDrift,
    MeterOutage,
    NetworkPartition,
    NodeCrash,
    PartitionEnd,
    PartitionStart,
    StuckActuator,
    TargetOutage,
    ThermalDerate,
)
from repro.faults.schedule import FaultSchedule
from repro.geopm.agent import AgentPolicy
from repro.modeling.quadratic import QuadraticPowerModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.framework import AnorSystem

__all__ = ["FaultInjector"]


class _SwitchableTarget(PowerTargetSource):
    """Passes through to ``inner`` unless switched into outage (NaN).

    ``scale`` models facility incidents (feeder loss, thermal derate,
    demand-response steps) that *reduce* the feed rather than blind it:
    the target stays finite, just smaller, so downstream hold-last-good
    logic passes it through and the control plane must actually shed.
    """

    def __init__(self, inner: PowerTargetSource) -> None:
        self.inner = inner
        self.down = False
        self.scale = 1.0

    def target(self, now: float) -> float:
        if self.down:
            return math.nan
        return self.inner.target(now) * self.scale


class FaultInjector:
    """Applies scheduled faults to a running :class:`AnorSystem`."""

    def __init__(self, system: "AnorSystem", schedule: FaultSchedule) -> None:
        self.system = system
        self.schedule = schedule
        self.log: list[str] = []
        self._pending: list[FaultEvent] = list(schedule.events)
        # (resolve_time, seq, log_line, action) — seq keeps resolution order
        # deterministic when two windows close on the same tick.
        self._resolutions: list[tuple[float, int, str, Callable[[], None]]] = []
        self._seq = 0
        self._meter_down = False
        # Jobs currently carrying a rogue-endpoint fault (byzantine model,
        # stuck actuator, meter drift): auto-targeted rogue events skip
        # them so a storm spreads across distinct victims.
        self._rogued: set[str] = set()
        # Open facility-incident windows: key -> feed factor.  Concurrent
        # incidents compose multiplicatively via _sync_feed_scale.
        self._feed_factors: dict[tuple[str, int], float] = {}
        self._feed_seq = 0
        self._install_meter_hook()
        self._target_switch = self._install_target_hook()

    # ------------------------------------------------------------ plumbing

    def _install_meter_hook(self) -> None:
        inner = self.system.manager.meter
        if inner is None:
            return

        def metered() -> float:
            return math.nan if self._meter_down else float(inner())

        self.system.manager.meter = metered

    def _install_target_hook(self) -> _SwitchableTarget:
        hold = self.system.manager.target_source
        if not isinstance(hold, HoldLastGoodTarget):  # pragma: no cover - guard
            raise TypeError("manager target source must be a HoldLastGoodTarget")
        switch = _SwitchableTarget(hold.inner)
        hold.inner = switch
        return switch

    def reattach(self) -> None:
        """Re-hook a freshly built manager (head-node restart path).

        The meter and target hooks wrap objects owned by the manager, so a
        new manager needs new hooks; fault *state* (meter down, target down,
        open windows) lives in the injector and carries across — an outage
        window spanning the head-node restart keeps the restarted head
        degraded until the window closes.
        """
        self._install_meter_hook()
        switch = self._install_target_hook()
        switch.down = self._target_switch.down
        switch.scale = self._target_switch.scale
        self._target_switch = switch

    def _record(self, now: float, line: str) -> None:
        self.log.append(f"t={now:10.1f} {line}")
        telemetry = self.system.telemetry
        if telemetry.enabled:
            # Every injected fault (and window resolution) doubles as an
            # incident on the event bus.  The "fault:" prefix marks these as
            # *injected* causes; unprefixed categories are effects observed
            # by the framework (eviction, meter-fault, head-restart ...).
            telemetry.incident(f"fault:{line.split(None, 1)[0]}", now, detail=line)

    def _defer(self, at: float, line: str, action: Callable[[], None]) -> None:
        self._resolutions.append((at, self._seq, line, action))
        self._seq += 1

    # ------------------------------------------------------------- driving

    def tick(self, now: float) -> None:
        """Fire every event and resolution due at or before ``now``."""
        due_res = sorted(
            (r for r in self._resolutions if r[0] <= now), key=lambda r: (r[0], r[1])
        )
        if due_res:
            self._resolutions = [r for r in self._resolutions if r[0] > now]
            for _, _, line, action in due_res:
                action()
                self._record(now, line)
        while self._pending and self._pending[0].time <= now:
            event = self._pending.pop(0)
            self._fire(event, now)

    @property
    def quiescent(self) -> bool:
        """True once every event has fired and every window has closed."""
        return not self._pending and not self._resolutions

    @property
    def next_due(self) -> float:
        """Earliest instant :meth:`tick` would act; +inf when quiescent.

        Both firing rules are ``time <= now`` checks, so a tick strictly
        before this instant is a guaranteed no-op — the event-driven loop
        uses that to stride across fault-free stretches.
        """
        due = math.inf
        if self._pending:
            due = self._pending[0].time
        for resolution in self._resolutions:
            if resolution[0] < due:
                due = resolution[0]
        return due

    def log_lines(self) -> list[str]:
        return list(self.log)

    def render(self) -> str:
        return "\n".join(self.log)

    # -------------------------------------------------------------- events

    def _fire(self, event: FaultEvent, now: float) -> None:
        if isinstance(event, NodeCrash):
            self._fire_node_crash(event, now)
        elif isinstance(event, HeadNodeCrash):
            self._fire_head_crash(event, now)
        elif isinstance(event, HeadNodeRestart):
            self._fire_head_restart(now)
        elif isinstance(event, EndpointCrash):
            self._fire_endpoint_crash(event, now)
        elif isinstance(event, LinkDegradation):
            self._fire_link_degradation(event, now)
        elif isinstance(event, MeterOutage):
            self._meter_down = True
            self._record(now, f"meter-outage start duration={event.duration:.1f}")
            self._defer(now + event.duration, "meter-outage end", self._meter_up)
        elif isinstance(event, TargetOutage):
            self._target_switch.down = True
            self._record(now, f"target-outage start duration={event.duration:.1f}")
            self._defer(now + event.duration, "target-outage end", self._target_up)
        elif isinstance(event, NetworkPartition):
            self._fire_partition(event, now)
        elif isinstance(event, (PartitionStart, PartitionEnd)):
            # Observational records emitted by the reliable-messaging layer;
            # scheduling one is a category error, not a silent no-op.
            raise TypeError(
                f"{type(event).__name__} is an observed record, not a schedulable "
                "fault; inject NetworkPartition instead"
            )
        elif isinstance(event, CorruptStatus):
            self._fire_corrupt_status(event, now)
        elif isinstance(event, ByzantineModel):
            self._fire_byzantine_model(event, now)
        elif isinstance(event, StuckActuator):
            self._fire_stuck_actuator(event, now)
        elif isinstance(event, MeterDrift):
            self._fire_meter_drift(event, now)
        elif isinstance(event, FeederLoss):
            self._fire_feed_reduction("feeder-loss", event.magnitude,
                                      event.duration, now)
        elif isinstance(event, ThermalDerate):
            self._fire_feed_reduction("thermal-derate", event.magnitude,
                                      event.duration, now)
        elif isinstance(event, DemandResponseEmergency):
            self._fire_feed_reduction("demand-response", event.magnitude,
                                      event.duration, now)
        else:  # pragma: no cover - exhaustive over the vocabulary
            raise TypeError(f"unknown fault event {event!r}")

    def _meter_up(self) -> None:
        self._meter_down = False

    def _target_up(self) -> None:
        self._target_switch.down = False

    # ----------------------------------------------- facility feed incidents

    def _fire_feed_reduction(self, label: str, magnitude: float,
                             duration: float, now: float) -> None:
        """Open a facility-incident window scaling the feed to (1 - magnitude).

        Concurrent windows compose multiplicatively (two 30 % losses leave
        49 % of the feed); each closes independently after its duration.
        """
        key = (label, self._feed_seq)
        self._feed_seq += 1
        self._feed_factors[key] = 1.0 - magnitude
        self._sync_feed_scale()
        self._record(
            now, f"{label} start magnitude={magnitude:.2f} duration={duration:.1f}"
        )

        def restore() -> None:
            self._feed_factors.pop(key, None)
            self._sync_feed_scale()

        self._defer(now + duration, f"{label} end", restore)

    def _sync_feed_scale(self) -> None:
        scale = 1.0
        for factor in self._feed_factors.values():
            scale *= factor
        self._target_switch.scale = scale

    def _fire_node_crash(self, event: NodeCrash, now: float) -> None:
        cluster = self.system.cluster
        if event.node_id >= cluster.num_nodes:
            self._record(now, f"node-crash node={event.node_id} skipped (no such node)")
            return
        if cluster.nodes[event.node_id].failed:
            self._record(now, f"node-crash node={event.node_id} skipped (already down)")
            return
        killed = self.system.crash_node(event.node_id, now)
        self._record(
            now,
            f"node-crash node={event.node_id} killed={killed or '-'} "
            f"down_for={event.down_for:.1f}",
        )
        if math.isfinite(event.down_for):
            node_id = event.node_id
            self._defer(
                now + event.down_for,
                f"node-restore node={node_id}",
                lambda: cluster.restore_node(node_id),
            )

    def _fire_head_crash(self, event: HeadNodeCrash, now: float) -> None:
        if not self.system.crash_head_node(now):
            self._record(now, "head-crash skipped (already down)")
            return
        self._record(now, f"head-crash down_for={event.down_for:.1f}")
        if math.isfinite(event.down_for):
            self._defer(
                now + event.down_for,
                "head-restart",
                lambda: self.system.restart_head_node(),
            )

    def _fire_head_restart(self, now: float) -> None:
        if not self.system.restart_head_node(now):
            self._record(now, "head-restart skipped (head already up)")
            return
        self._record(now, "head-restart")

    def _pick_job(self, job_id: str | None, now: float) -> str | None:
        if job_id is not None:
            return job_id
        live = sorted(self.system.endpoints)
        return live[0] if live else None

    def _pick_fresh_job(self, job_id: str | None) -> str | None:
        """Pick a victim for a rogue-endpoint fault.

        Skips jobs already carrying a rogue fault so that successive
        auto-targeted rogue events hit distinct victims, and among the
        fresh ones picks the job with the most *remaining work* (uncapped
        seconds left, ties by id) — the adversarial worst case, since a
        rogue endpoint that exits seconds later does no lasting damage.
        Deterministic for a given system state.
        """
        if job_id is not None:
            return job_id
        candidates = []
        for jid, job in self.system.cluster.running.items():
            if jid not in self.system.endpoints or jid in self._rogued:
                continue
            jt = job.job_type
            remaining = (1.0 - job.progress) * jt.t_uncapped
            candidates.append((remaining, jid))
        if not candidates:
            return None
        return max(candidates)[1]

    def _fire_endpoint_crash(self, event: EndpointCrash, now: float) -> None:
        job_id = self._pick_job(event.job_id, now)
        if job_id is None or job_id not in self.system.endpoints:
            self._record(now, "endpoint-crash skipped (no live endpoint)")
            return
        self.system.crash_endpoint(job_id, now)
        self._record(now, f"endpoint-crash job={job_id}")

    def _fire_link_degradation(self, event: LinkDegradation, now: float) -> None:
        system = self.system
        if event.job_id is None:
            cfg = system.config
            saved = (
                cfg.link_drop_probability,
                cfg.link_latency_up,
                cfg.link_latency_down,
            )
            cfg.link_drop_probability = event.drop_probability
            if event.extra_latency > 0:
                base = cfg.link_latency
                cfg.link_latency_up = (
                    saved[1] if saved[1] is not None else base
                ) + event.extra_latency
                cfg.link_latency_down = (
                    saved[2] if saved[2] is not None else base
                ) + event.extra_latency
            for endpoint in system.endpoints.values():
                self._degrade_link(endpoint.link, event)
            self._record(
                now,
                f"link-degrade start scope=all drop={event.drop_probability:.3f} "
                f"extra_latency={event.extra_latency:.3f} duration={event.duration:.1f}",
            )

            def restore() -> None:
                (
                    cfg.link_drop_probability,
                    cfg.link_latency_up,
                    cfg.link_latency_down,
                ) = saved
                for endpoint in system.endpoints.values():
                    self._restore_link(endpoint.link, saved)

            self._defer(now + event.duration, "link-degrade end scope=all", restore)
            return
        endpoint = system.endpoints.get(event.job_id)
        if endpoint is None:
            self._record(
                now, f"link-degrade job={event.job_id} skipped (no live endpoint)"
            )
            return
        cfg = system.config
        saved = (cfg.link_drop_probability, cfg.link_latency_up, cfg.link_latency_down)
        link = endpoint.link
        self._degrade_link(link, event)
        self._record(
            now,
            f"link-degrade start job={event.job_id} "
            f"drop={event.drop_probability:.3f} "
            f"extra_latency={event.extra_latency:.3f} duration={event.duration:.1f}",
        )
        self._defer(
            now + event.duration,
            f"link-degrade end job={event.job_id}",
            lambda: self._restore_link(link, saved),
        )

    def _fire_partition(self, event: NetworkPartition, now: float) -> None:
        system = self.system
        if event.job_id is None:
            # Cluster-wide cut: every live link blackholes, and links created
            # while the window is open are born partitioned (the config flag
            # covers reconnect attempts during the outage).
            system.config.link_partitioned = True
            for endpoint in system.endpoints.values():
                self._set_partitioned(endpoint.link, True)
            self._record(
                now, f"partition start scope=all duration={event.duration:.1f}"
            )

            def heal() -> None:
                system.config.link_partitioned = False
                for endpoint in system.endpoints.values():
                    self._set_partitioned(endpoint.link, False)

            self._defer(now + event.duration, "partition end scope=all", heal)
            return
        endpoint = system.endpoints.get(event.job_id)
        if endpoint is None:
            self._record(
                now, f"partition job={event.job_id} skipped (no live endpoint)"
            )
            return
        link = endpoint.link
        self._set_partitioned(link, True)
        self._record(
            now, f"partition start job={event.job_id} duration={event.duration:.1f}"
        )
        self._defer(
            now + event.duration,
            f"partition end job={event.job_id}",
            lambda: self._set_partitioned(link, False),
        )

    def _set_partitioned(self, link, value: bool) -> None:
        link.up.partitioned = value
        link.down.partitioned = value

    def _degrade_link(self, link, event: LinkDegradation) -> None:
        link.up.drop_probability = event.drop_probability
        link.down.drop_probability = event.drop_probability
        if event.extra_latency > 0:
            link.up.latency += event.extra_latency
            link.down.latency += event.extra_latency

    def _restore_link(self, link, saved: tuple) -> None:
        drop, lat_up, lat_down = saved
        base = self.system.config.link_latency
        link.up.drop_probability = drop
        link.down.drop_probability = drop
        link.up.latency = base if lat_up is None else lat_up
        link.down.latency = base if lat_down is None else lat_down

    def _fire_corrupt_status(self, event: CorruptStatus, now: float) -> None:
        job_id = self._pick_job(event.job_id, now)
        endpoint = self.system.endpoints.get(job_id) if job_id is not None else None
        if endpoint is None:
            self._record(now, "corrupt-status skipped (no live endpoint)")
            return
        bad = {"model_r2": 0.99}
        power = float(endpoint.nodes * 200.0)
        if event.kind == "nan":
            bad.update(model_a=math.nan, model_b=math.nan, model_c=math.nan)
        elif event.kind == "inf":
            bad.update(model_a=math.inf, model_b=-math.inf, model_c=math.inf)
        elif event.kind == "nonphysical":
            # T rising with P: budgeting on this would starve the job hardest
            # exactly when power is plentiful.
            bad.update(model_a=0.0, model_b=0.05, model_c=0.1)
        elif event.kind == "nan-power":
            bad = {}
            power = math.nan
        msg = StatusMessage(
            job_id=job_id,
            timestamp=now,
            epoch_count=0,
            measured_power=power,
            applied_cap=200.0,
            **bad,
        )
        endpoint.link.send_up(msg, now)
        self._record(now, f"corrupt-status job={job_id} kind={event.kind}")

    # ----------------------------------------------- rogue-endpoint faults

    def _fire_byzantine_model(self, event: ByzantineModel, now: float) -> None:
        """Decouple a job's shipped model coefficients from its true curve.

        The endpoint's ``_model_fields`` hook is shadowed with a fixed fake
        fit that passes every syntactic check the manager applies (finite,
        monotone decreasing, positive t_min, high R²) but describes a
        different machine.  An endpoint-process restart builds a fresh
        :class:`JobTierEndpoint` and clears the shadow — the watchdog heals
        the lie, like any process-local corruption.
        """
        job_id = self._pick_fresh_job(event.job_id)
        endpoint = self.system.endpoints.get(job_id) if job_id is not None else None
        job = self.system.cluster.running.get(job_id) if job_id is not None else None
        if endpoint is None or job is None:
            self._record(now, "byzantine-model skipped (no fresh endpoint)")
            return
        truth = job.job_type.truth
        if event.mode == "flat":
            # Claims power-insensitivity *and* a faster-than-possible pace:
            # the budgeter starves it to the floor, where its true (much
            # slower) progress contradicts the shipped curve.
            fake = QuadraticPowerModel.from_anchors(
                truth.t_min * 0.5, 1.01, endpoint._p_min, endpoint._p_max
            )
        else:  # "steep": claims extreme sensitivity, grabbing budget.
            fake = QuadraticPowerModel.from_anchors(
                truth.t_min, 4.0, endpoint._p_min, endpoint._p_max
            )
        fields = {
            "model_a": fake.a,
            "model_b": fake.b,
            "model_c": fake.c,
            "model_r2": 0.97,
        }
        endpoint._model_fields = lambda: dict(fields)
        self._rogued.add(job_id)
        self._record(now, f"byzantine-model job={job_id} mode={event.mode}")
        if math.isfinite(event.duration):
            captured = endpoint

            def heal() -> None:
                self._rogued.discard(job_id)
                live = self.system.endpoints.get(job_id)
                if live is captured:
                    live.__dict__.pop("_model_fields", None)

            self._defer(
                now + event.duration, f"byzantine-model end job={job_id}", heal
            )

    def _fire_stuck_actuator(self, event: StuckActuator, now: float) -> None:
        """Make a job's platform cap writes silently no-op.

        The proxy sits on the job's GEOPM endpoint object (owned by the
        running job, i.e. the *platform* side), so it survives endpoint
        process restarts — a wedged RAPL register does not care which
        process talks to it.  It dies with the job (requeue onto new nodes
        is new hardware).
        """
        job_id = self._pick_fresh_job(event.job_id)
        endpoint = self.system.endpoints.get(job_id) if job_id is not None else None
        if endpoint is None:
            self._record(now, "stuck-actuator skipped (no fresh endpoint)")
            return
        geopm = endpoint.geopm
        if event.release:
            # Fail open first: the register wedges at the hardware maximum,
            # so the job draws its full demand regardless of future caps.
            geopm.write_policy(
                AgentPolicy(power_cap_node=endpoint._p_max, issued_at=now)
            )
        geopm.write_policy = lambda policy: None
        self._rogued.add(job_id)
        self._record(
            now,
            f"stuck-actuator job={job_id} release={event.release} "
            f"duration={event.duration:.1f}",
        )
        if math.isfinite(event.duration):

            def heal() -> None:
                self._rogued.discard(job_id)
                geopm.__dict__.pop("write_policy", None)
                live = self.system.endpoints.get(job_id)
                if live is not None and live.geopm is geopm:
                    # Re-assert the most recently dispatched cap: the healed
                    # actuator applies what the control plane last asked for.
                    geopm.write_policy(
                        AgentPolicy(
                            power_cap_node=live.current_cap,
                            issued_at=now + event.duration,
                        )
                    )

            self._defer(
                now + event.duration, f"stuck-actuator end job={job_id}", heal
            )

    def _fire_meter_drift(self, event: MeterDrift, now: float) -> None:
        """Bias the power samples a job's endpoint reads from its agents.

        Affects only the job's *self-reported* telemetry (status messages
        upward); the facility's out-of-band node metering is untouched —
        the contrast the audit layer keys on.  Like the stuck actuator,
        the proxy lives on the platform-side GEOPM endpoint object.
        """
        job_id = self._pick_fresh_job(event.job_id)
        endpoint = self.system.endpoints.get(job_id) if job_id is not None else None
        if endpoint is None:
            self._record(now, "meter-drift skipped (no fresh endpoint)")
            return
        geopm = endpoint.geopm
        real_read = geopm.read_sample
        t0 = now

        def biased_read():
            sample = real_read()
            if sample is None:
                return None
            dt = max(sample.timestamp - t0, 0.0)
            factor = max(0.0, 1.0 + event.factor_rate * dt)
            return replace(
                sample, power=sample.power * factor + event.offset_rate * dt
            )

        geopm.read_sample = biased_read
        self._rogued.add(job_id)
        self._record(
            now,
            f"meter-drift job={job_id} factor_rate={event.factor_rate:+.4f} "
            f"offset_rate={event.offset_rate:+.3f} duration={event.duration:.1f}",
        )
        if math.isfinite(event.duration):

            def heal() -> None:
                self._rogued.discard(job_id)
                geopm.__dict__.pop("read_sample", None)

            self._defer(
                now + event.duration, f"meter-drift end job={job_id}", heal
            )
