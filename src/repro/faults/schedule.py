"""Fault schedules: ordered, replayable event lists.

A :class:`FaultSchedule` is immutable once built; the same schedule driven
against the same seeded system produces a bit-identical fault log.  Three
ways to build one:

* hand-script events (tests pin exact scenarios);
* :meth:`FaultSchedule.standard_load` — the acceptance load (1 node crash,
  1 endpoint crash, 5 % link drop, one 60 s meter outage, one corrupt
  status) scaled to a run's duration;
* :meth:`FaultSchedule.random` — Poisson arrivals per fault class from a
  seed, so robustness properties can be swept over many fault mixes.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Iterable, Iterator

from repro.faults.events import (
    BYZANTINE_MODES,
    CORRUPTION_KINDS,
    ByzantineModel,
    CorruptStatus,
    DemandResponseEmergency,
    EndpointCrash,
    FaultEvent,
    FeederLoss,
    HeadNodeCrash,
    LinkDegradation,
    MeterDrift,
    MeterOutage,
    NodeCrash,
    StuckActuator,
    TargetOutage,
    ThermalDerate,
)
from repro.util.rng import Seedlike, ensure_rng

__all__ = ["FaultSchedule"]


def _sort_key(event: FaultEvent) -> tuple:
    """Total order: fire time, then class name, then field values."""
    values = tuple(repr(getattr(event, f.name)) for f in fields(event))
    return (event.time, type(event).__name__, values)


class FaultSchedule:
    """An immutable, time-ordered sequence of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        collected = list(events)
        for event in collected:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a FaultEvent: {event!r}")
        self.events: tuple[FaultEvent, ...] = tuple(sorted(collected, key=_sort_key))

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __repr__(self) -> str:
        return f"FaultSchedule({list(self.events)!r})"

    def extended(self, extra: Iterable[FaultEvent]) -> "FaultSchedule":
        """A new schedule with ``extra`` events merged in."""
        return FaultSchedule((*self.events, *extra))

    # ------------------------------------------------------------- builders

    @classmethod
    def standard_load(
        cls,
        duration: float,
        *,
        num_nodes: int = 16,
        drop_probability: float = 0.05,
        meter_outage: float = 60.0,
        node_down_fraction: float = 0.25,
    ) -> "FaultSchedule":
        """The acceptance-criteria fault load for a run of ``duration`` s.

        One node crash at 25 % of the run (down for ``node_down_fraction``
        of the run), one endpoint crash at 40 %, ``drop_probability`` link
        loss across the whole run, one corrupt status at 50 %, and one
        ``meter_outage``-second meter outage at 60 %.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be ≥ 1, got {num_nodes}")
        return cls(
            [
                LinkDegradation(
                    time=0.0, duration=duration, drop_probability=drop_probability
                ),
                NodeCrash(
                    time=0.25 * duration,
                    node_id=num_nodes // 2,
                    down_for=max(node_down_fraction * duration, 1.0),
                ),
                EndpointCrash(time=0.40 * duration),
                CorruptStatus(time=0.50 * duration, kind="nan"),
                MeterOutage(time=0.60 * duration, duration=meter_outage),
            ]
        )

    @classmethod
    def random(
        cls,
        duration: float,
        *,
        seed: Seedlike,
        num_nodes: int = 16,
        node_crash_rate: float = 0.0,
        endpoint_crash_rate: float = 0.0,
        head_crash_rate: float = 0.0,
        link_burst_rate: float = 0.0,
        meter_outage_rate: float = 0.0,
        target_outage_rate: float = 0.0,
        corrupt_status_rate: float = 0.0,
        byzantine_rate: float = 0.0,
        stuck_actuator_rate: float = 0.0,
        meter_drift_rate: float = 0.0,
        feeder_loss_rate: float = 0.0,
        thermal_derate_rate: float = 0.0,
        demand_response_rate: float = 0.0,
        node_down_time: float = 300.0,
        head_down_time: float = 60.0,
        burst_duration: float = 60.0,
        burst_drop: float = 0.2,
        outage_duration: float = 60.0,
        rogue_duration: float = 120.0,
        drift_ramp: float = 0.004,
        feeder_loss_magnitude: float = 0.3,
        feeder_loss_duration: float = 120.0,
        thermal_derate_magnitude: float = 0.15,
        thermal_derate_duration: float = 300.0,
        demand_response_step: float = 0.4,
        demand_response_duration: float = 180.0,
    ) -> "FaultSchedule":
        """Draw a schedule from Poisson arrivals per fault class.

        Rates are events per second of simulated time (e.g. ``1/600`` is one
        expected event per ten minutes).  The draw happens here, once — the
        resulting schedule is fully scripted, so replaying it is exact.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be ≥ 1, got {num_nodes}")
        # A negative rate silently yields an empty arrival stream and a
        # negative duration builds events the injector chokes on much later —
        # reject both here, naming the offending field.
        rates = {
            "node_crash_rate": node_crash_rate,
            "endpoint_crash_rate": endpoint_crash_rate,
            "head_crash_rate": head_crash_rate,
            "link_burst_rate": link_burst_rate,
            "meter_outage_rate": meter_outage_rate,
            "target_outage_rate": target_outage_rate,
            "corrupt_status_rate": corrupt_status_rate,
            "byzantine_rate": byzantine_rate,
            "stuck_actuator_rate": stuck_actuator_rate,
            "meter_drift_rate": meter_drift_rate,
            "feeder_loss_rate": feeder_loss_rate,
            "thermal_derate_rate": thermal_derate_rate,
            "demand_response_rate": demand_response_rate,
        }
        for name, rate in rates.items():
            if rate < 0:
                raise ValueError(f"{name} must be ≥ 0, got {rate}")
        durations = {
            "node_down_time": node_down_time,
            "head_down_time": head_down_time,
            "burst_duration": burst_duration,
            "outage_duration": outage_duration,
            "rogue_duration": rogue_duration,
            "feeder_loss_duration": feeder_loss_duration,
            "thermal_derate_duration": thermal_derate_duration,
            "demand_response_duration": demand_response_duration,
        }
        for name, value in durations.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if not 0.0 <= burst_drop <= 1.0:
            raise ValueError(f"burst_drop must be in [0, 1], got {burst_drop}")
        if drift_ramp < 0:
            raise ValueError(f"drift_ramp must be ≥ 0, got {drift_ramp}")
        magnitudes = {
            "feeder_loss_magnitude": feeder_loss_magnitude,
            "thermal_derate_magnitude": thermal_derate_magnitude,
            "demand_response_step": demand_response_step,
        }
        for name, value in magnitudes.items():
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        rng = ensure_rng(seed)
        events: list[FaultEvent] = []

        def arrivals(rate: float) -> list[float]:
            times = []
            if rate <= 0:
                return times
            t = float(rng.exponential(1.0 / rate))
            while t < duration:
                times.append(t)
                t += float(rng.exponential(1.0 / rate))
            return times

        for t in arrivals(node_crash_rate):
            events.append(
                NodeCrash(
                    time=t,
                    node_id=int(rng.integers(0, num_nodes)),
                    down_for=node_down_time,
                )
            )
        for t in arrivals(endpoint_crash_rate):
            events.append(EndpointCrash(time=t))
        for t in arrivals(head_crash_rate):
            events.append(HeadNodeCrash(time=t, down_for=head_down_time))
        for t in arrivals(link_burst_rate):
            events.append(
                LinkDegradation(
                    time=t, duration=burst_duration, drop_probability=burst_drop
                )
            )
        for t in arrivals(meter_outage_rate):
            events.append(MeterOutage(time=t, duration=outage_duration))
        for t in arrivals(target_outage_rate):
            events.append(TargetOutage(time=t, duration=outage_duration))
        for t in arrivals(corrupt_status_rate):
            kind = CORRUPTION_KINDS[int(rng.integers(0, len(CORRUPTION_KINDS)))]
            events.append(CorruptStatus(time=t, kind=kind))
        for t in arrivals(byzantine_rate):
            mode = BYZANTINE_MODES[int(rng.integers(0, len(BYZANTINE_MODES)))]
            events.append(
                ByzantineModel(time=t, mode=mode, duration=rogue_duration)
            )
        for t in arrivals(stuck_actuator_rate):
            events.append(StuckActuator(time=t, duration=rogue_duration))
        for t in arrivals(meter_drift_rate):
            sign = 1.0 if rng.random() < 0.5 else -1.0
            events.append(
                MeterDrift(
                    time=t,
                    factor_rate=sign * drift_ramp,
                    duration=rogue_duration,
                )
            )
        # Facility incidents last: a zero rate draws nothing from the RNG,
        # so schedules built before these knobs existed stay bit-identical.
        for t in arrivals(feeder_loss_rate):
            events.append(
                FeederLoss(
                    time=t,
                    magnitude=feeder_loss_magnitude,
                    duration=feeder_loss_duration,
                )
            )
        for t in arrivals(thermal_derate_rate):
            events.append(
                ThermalDerate(
                    time=t,
                    magnitude=thermal_derate_magnitude,
                    duration=thermal_derate_duration,
                )
            )
        for t in arrivals(demand_response_rate):
            events.append(
                DemandResponseEmergency(
                    time=t,
                    magnitude=demand_response_step,
                    duration=demand_response_duration,
                )
            )
        return cls(events)

    # -------------------------------------------------------------- queries

    def events_of(self, *types: type) -> list[FaultEvent]:
        """Events matching any of the given classes, in schedule order."""
        return [e for e in self.events if isinstance(e, types)]

    def describe(self) -> str:
        """One line per event — the scripted half of the injector's log."""
        return "\n".join(
            f"t={e.time:10.1f} scheduled {type(e).__name__}" for e in self.events
        )
