"""Deterministic fault injection for the ANOR control plane.

The paper evaluates on a healthy 16-node cluster; this package supplies the
faults a production deployment must survive — node crashes, silent endpoint
processes, lossy/slow links, facility-meter outages, target-feed outages,
and corrupt status messages — as a scripted, seeded, perfectly replayable
event stream.

* :mod:`repro.faults.events` — the fault-event vocabulary (pure data).
* :mod:`repro.faults.schedule` — :class:`FaultSchedule`: an ordered event
  list, built by hand, from the standard acceptance load, or drawn from a
  seeded stochastic process (Poisson arrivals per fault class).
* :mod:`repro.faults.injector` — :class:`FaultInjector`: drives a schedule
  against a running :class:`~repro.core.framework.AnorSystem`, keeping a
  bit-identical event log for a given (seed, schedule) pair.
"""

from repro.faults.events import (
    ByzantineModel,
    CorruptStatus,
    DemandResponseEmergency,
    EndpointCrash,
    FaultEvent,
    FeederLoss,
    HeadNodeCrash,
    HeadNodeRestart,
    LinkDegradation,
    MeterDrift,
    MeterOutage,
    NetworkPartition,
    NodeCrash,
    PartitionEnd,
    PartitionStart,
    StuckActuator,
    TargetOutage,
    ThermalDerate,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule

__all__ = [
    "FaultEvent",
    "NodeCrash",
    "EndpointCrash",
    "HeadNodeCrash",
    "HeadNodeRestart",
    "LinkDegradation",
    "NetworkPartition",
    "PartitionStart",
    "PartitionEnd",
    "MeterOutage",
    "TargetOutage",
    "CorruptStatus",
    "ByzantineModel",
    "StuckActuator",
    "MeterDrift",
    "FeederLoss",
    "ThermalDerate",
    "DemandResponseEmergency",
    "FaultSchedule",
    "FaultInjector",
]
