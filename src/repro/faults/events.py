"""Fault-event vocabulary: immutable records of what breaks, and when.

Events are pure data — the :class:`~repro.faults.injector.FaultInjector`
interprets them against a running system.  Every event carries its fire
``time`` in simulated seconds; events with a ``duration`` are resolved
(link restored, meter back online, node rejoins) by the injector at
``time + duration``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "FaultEvent",
    "NodeCrash",
    "EndpointCrash",
    "HeadNodeCrash",
    "HeadNodeRestart",
    "LinkDegradation",
    "NetworkPartition",
    "PartitionStart",
    "PartitionEnd",
    "MeterOutage",
    "TargetOutage",
    "CorruptStatus",
    "ByzantineModel",
    "StuckActuator",
    "MeterDrift",
    "FeederLoss",
    "ThermalDerate",
    "DemandResponseEmergency",
]

#: Corruption modes a :class:`CorruptStatus` event can inject.
CORRUPTION_KINDS = ("nan", "inf", "nonphysical", "nan-power")

#: Lying strategies a :class:`ByzantineModel` event can adopt.
BYZANTINE_MODES = ("flat", "steep")


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something goes wrong at simulated time ``time``."""

    time: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(f"event time must be finite and ≥ 0, got {self.time}")


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """A compute node dies; any job running on it is killed mid-run.

    The node rejoins the pool ``down_for`` seconds later (``inf`` = never).
    """

    node_id: int = 0
    down_for: float = 300.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_id < 0:
            raise ValueError(f"node_id must be ≥ 0, got {self.node_id}")
        if self.down_for <= 0:
            raise ValueError(f"down_for must be positive, got {self.down_for}")


@dataclass(frozen=True)
class HeadNodeCrash(FaultEvent):
    """The cluster-tier (head node) process dies; compute nodes keep running.

    A supervisor restarts the head ``down_for`` seconds later (``inf`` =
    never; pair with an explicit :class:`HeadNodeRestart` instead).  What
    the restarted head remembers depends on whether the system was built
    with a checkpoint directory — see DESIGN.md §4d.
    """

    down_for: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_for <= 0:
            raise ValueError(f"down_for must be positive, got {self.down_for}")


@dataclass(frozen=True)
class HeadNodeRestart(FaultEvent):
    """Explicitly restart a downed head node (scripted supervisor action).

    A no-op (logged, skipped) if the head is already up — so schedules
    mixing a finite-``down_for`` crash with a scripted restart stay valid.
    """


@dataclass(frozen=True)
class EndpointCrash(FaultEvent):
    """A job's endpoint process dies; the job keeps running but goes silent.

    ``job_id`` of ``None`` targets the lexicographically-first job with a
    live endpoint at fire time (deterministic without naming jobs upfront).
    """

    job_id: str | None = None


@dataclass(frozen=True)
class LinkDegradation(FaultEvent):
    """A window of lossy and/or slow tier-to-tier links.

    ``job_id`` of ``None`` degrades every link — including links created
    while the window is open (a partition hits new connections too).
    """

    duration: float = 60.0
    drop_probability: float = 0.0
    extra_latency: float = 0.0
    job_id: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}"
            )
        if self.extra_latency < 0:
            raise ValueError(f"extra_latency must be ≥ 0, got {self.extra_latency}")


@dataclass(frozen=True)
class NetworkPartition(FaultEvent):
    """A full partition: messages blackhole in both directions.

    Unlike :class:`LinkDegradation` (probabilistic loss), a partition drops
    *every* message for ``duration`` seconds — including over links created
    while the partition is open.  ``job_id`` of ``None`` cuts every link
    (head node unreachable from all jobs).
    """

    duration: float = 60.0
    job_id: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class PartitionStart(FaultEvent):
    """Observed (not scheduled): a reliable link declared its peer unreachable.

    Emitted by :class:`~repro.core.reliable.ReliableLink` when retransmits
    exhaust the partition threshold — the *detection* of sustained loss,
    whatever its cause.  Scheduling one in a FaultSchedule is an error; the
    injector refuses it.
    """

    link: str = ""


@dataclass(frozen=True)
class PartitionEnd(FaultEvent):
    """Observed (not scheduled): a partitioned reliable link heard an ack again."""

    link: str = ""
    outage_seconds: float = 0.0


@dataclass(frozen=True)
class MeterOutage(FaultEvent):
    """The facility power meter returns NaN for ``duration`` seconds."""

    duration: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class TargetOutage(FaultEvent):
    """The cluster power-target feed returns NaN for ``duration`` seconds."""

    duration: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class CorruptStatus(FaultEvent):
    """One poisoned StatusMessage is injected up a job's link.

    Kinds: ``nan``/``inf`` — non-finite model coefficients; ``nonphysical``
    — a curve claiming more power makes the job slower; ``nan-power`` — a
    non-finite measured power.  ``job_id`` of ``None`` targets the
    lexicographically-first job with a live endpoint.
    """

    job_id: str | None = None
    kind: str = "nan"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in CORRUPTION_KINDS:
            raise ValueError(
                f"kind must be one of {CORRUPTION_KINDS}, got {self.kind!r}"
            )


@dataclass(frozen=True)
class ByzantineModel(FaultEvent):
    """A job endpoint ships model coefficients decoupled from its true curve.

    The shipped fit passes every syntactic check (finite, monotone, high
    R²) but describes a different machine: ``"flat"`` claims the job is
    power-insensitive *and* faster than physically possible (so the
    budgeter starves it to the floor and its claimed progress rate is a
    lie); ``"steep"`` claims extreme sensitivity (grabbing budget from
    honest jobs).  ``job_id`` of ``None`` targets the live endpoint with
    the most remaining work not already carrying a rogue fault.  The lie ends after
    ``duration`` seconds (``inf`` = never) or when the endpoint process
    is restarted.
    """

    job_id: str | None = None
    mode: str = "flat"
    duration: float = math.inf

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in BYZANTINE_MODES:
            raise ValueError(
                f"mode must be one of {BYZANTINE_MODES}, got {self.mode!r}"
            )
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class StuckActuator(FaultEvent):
    """A job's platform cap writes are silently ignored.

    With ``release`` True the actuator fails *open* first — the platform
    cap jumps to ``p_max`` and stays there (the RAPL-register-wedged
    worst case: the job draws its full demand regardless of dispatched
    caps).  With ``release`` False the cap freezes at its current value.
    The actuator heals after ``duration`` seconds (``inf`` = never), at
    which point the most recently dispatched cap is applied.
    """

    job_id: str | None = None
    release: bool = True
    duration: float = math.inf

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class FeederLoss(FaultEvent):
    """A utility feeder drops: available facility power falls by ``magnitude``.

    The feed scales to ``(1 - magnitude)`` of nominal for ``duration``
    seconds, then the feeder is re-energised.  Concurrent facility
    incidents compose multiplicatively (two 30 % losses leave 49 %).
    """

    magnitude: float = 0.3
    duration: float = 120.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.magnitude < 1.0:
            raise ValueError(
                f"magnitude must be in (0, 1), got {self.magnitude}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class ThermalDerate(FaultEvent):
    """Cooling-plant derate: sustained capacity loss of ``magnitude``.

    Semantically a slow facility incident (condenser fouling, hot-day
    derate) — typically smaller in magnitude but longer in duration than a
    :class:`FeederLoss`.  The feed scales to ``(1 - magnitude)`` of nominal
    for ``duration`` seconds.
    """

    magnitude: float = 0.15
    duration: float = 300.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.magnitude < 1.0:
            raise ValueError(
                f"magnitude must be in (0, 1), got {self.magnitude}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class DemandResponseEmergency(FaultEvent):
    """Grid demand-response emergency: a mandatory step-down of ``magnitude``.

    The sharpest of the facility incidents — the grid operator orders an
    immediate load reduction the facility must honour for ``duration``
    seconds or face disconnection.
    """

    magnitude: float = 0.4
    duration: float = 180.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.magnitude < 1.0:
            raise ValueError(
                f"magnitude must be in (0, 1), got {self.magnitude}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class MeterDrift(FaultEvent):
    """A job's self-reported power meter develops a bias ramp.

    The power the endpoint reads (and reports upward in status messages)
    becomes ``power · max(0, 1 + factor_rate·Δt) + offset_rate·Δt`` with
    ``Δt`` seconds since the fault fired.  Negative rates under-report
    (the dangerous direction: dormancy triage under-reserves), positive
    rates over-report.  Out-of-band facility metering is unaffected —
    that contrast is what the audit layer detects.  Heals after
    ``duration`` seconds (``inf`` = never).
    """

    job_id: str | None = None
    factor_rate: float = -0.004
    offset_rate: float = 0.0
    duration: float = math.inf

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.factor_rate):
            raise ValueError(
                f"factor_rate must be finite, got {self.factor_rate}")
        if not math.isfinite(self.offset_rate):
            raise ValueError(
                f"offset_rate must be finite, got {self.offset_rate}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
