"""Per-node performance-variation coefficients (paper §6.4).

"We generate performance coefficients from a normal distribution with a mean
of 1, and adjust the standard deviation to change the level of performance
variation.  The performance coefficients are randomly generated for each of
1000 compute nodes at the start of each of 10 simulations per variation
level."

Fig. 11's x-axis labels variation levels as "99 % of Performance Within
±X %"; :func:`variation_sigma_for_band` converts that band half-width into
the normal σ (99 % two-sided ⇒ 2.576 σ).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["variation_sigma_for_band", "draw_node_multipliers"]

#: Two-sided 99 % normal quantile.
_Z99 = 2.5758293035489004


def variation_sigma_for_band(band_fraction: float) -> float:
    """σ such that 99 % of N(1, σ) lies within 1 ± band_fraction."""
    if band_fraction < 0:
        raise ValueError(f"band must be ≥ 0, got {band_fraction}")
    return band_fraction / _Z99


def draw_node_multipliers(
    num_nodes: int,
    band_fraction: float,
    *,
    seed: int | np.random.Generator | None = None,
    floor: float = 0.05,
) -> np.ndarray:
    """Per-node performance multipliers ~ N(1, σ(band)), floored at ``floor``.

    The floor keeps pathological draws physical (a node cannot run backwards)
    without meaningfully distorting the distribution at the paper's levels
    (≤ ±30 % ⇒ σ ≤ 0.117).
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be ≥ 1, got {num_nodes}")
    rng = ensure_rng(seed)
    sigma = variation_sigma_for_band(band_fraction)
    mult = rng.normal(1.0, sigma, size=num_nodes) if sigma > 0 else np.ones(num_nodes)
    return np.maximum(mult, floor)
