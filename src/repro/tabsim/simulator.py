"""The per-second tabular cluster simulation loop (paper §5.6).

"Each simulated second, the simulator updates the state of the node table,
then updates the view of the cluster seen by the job scheduler and power
manager, then schedules jobs and caps power.  The policy updates inputs to
the node table that will be processed in the node-update stage of the next
time step."

The power manager applies caps uniformly across active nodes (the AQA rule,
§4.4.2), with an optional QoS-aware variant that exempts at-risk jobs from
capping (§6.4 investigates this feedback path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.aqa.queues import QueuedJob, QueueSet, WorkQueue
from repro.aqa.scheduler import WeightedScheduler
from repro.tabsim.tables import JobState, JobTable, NodeTable, SimJobType
from repro.tabsim.variation import draw_node_multipliers
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.util.rng import ensure_rng
from repro.workloads.trace import Schedule

__all__ = ["SimConfig", "SimResult", "TabularClusterSimulator"]


def _waterfill_cap(
    available: float, demand_max: np.ndarray, p_min: float, p_max: float
) -> float:
    """The uniform cap c with Σ min(c, demand_max) = available, clamped.

    Solved by sorting the demands once and scanning the breakpoints — the
    classic waterfilling argument, O(n log n) per budgeting round.
    """
    n = demand_max.size
    if n == 0:
        return p_max
    order = np.sort(demand_max)
    # Below breakpoint k (0-based), the first k nodes saturate at their
    # demand and the rest sit at the cap: total(c) = prefix[k] + (n-k)·c.
    prefix = np.concatenate([[0.0], np.cumsum(order)])
    lower = np.concatenate([[0.0], order[:-1]])
    return _waterfill_scan(
        available, float(demand_max.sum()), order, prefix,
        n - np.arange(n), lower - 1e-12, order + 1e-12, p_min, p_max
    )


def _waterfill_scan(
    available: float,
    demand_sum: float,
    order: np.ndarray,
    prefix: np.ndarray,
    denom: np.ndarray,
    lower_eps: np.ndarray,
    upper_eps: np.ndarray,
    p_min: float,
    p_max: float,
) -> float:
    """Waterfill breakpoint scan over presorted demands.

    Split out of :func:`_waterfill_cap` so the simulator can reuse the
    sorted demands and prefix sums across ticks — the busy set (and hence
    the demand vector) only changes when jobs start or finish.
    """
    n = order.size
    if n == 0 or available >= demand_sum:
        return p_max
    if available <= n * p_min:
        return p_min
    cands = (available - prefix[:-1]) / denom
    valid = (cands >= lower_eps) & (cands <= upper_eps)
    first = int(np.argmax(valid))
    c = cands[first] if valid[first] else order[-1]
    # Scalar clamp: same value as np.clip for the finite c produced above.
    return float(min(max(c, p_min), p_max))


@dataclass
class _BusyState:
    """Gathers over the busy node set, cached between assignment changes.

    Every array is aligned with ``busy_idx``; the ``demand_*`` fields are
    the waterfill's sorted-demand state.  The cache is invalidated by the
    node table's ``version`` counter (bumped on assign/release), so per-tick
    stages reuse these instead of re-gathering 1000-wide fancy indexes.
    """

    version: int
    busy_idx: np.ndarray
    job_of: np.ndarray
    type_of: np.ndarray
    p_lo: np.ndarray
    p_hi: np.ndarray
    p_span: np.ndarray
    t_fast: np.ndarray
    t_slow: np.ndarray
    t_span: np.ndarray
    perf: np.ndarray
    demand_sum: float
    demand_order: np.ndarray
    demand_prefix: np.ndarray
    demand_denom: np.ndarray
    demand_lower_eps: np.ndarray
    demand_upper_eps: np.ndarray


@dataclass
class SimConfig:
    """Cluster and demand-response inputs (paper §5.6).

    "Input cluster properties include average idle power per node, total
    node count, average node utilization, and demand response parameters"
    (``average_power``, ``reserve``, and the regulation ``signal``).
    """

    num_nodes: int = 1000
    idle_power: float = 60.0
    p_node_min: float = 140.0
    p_node_max: float = 280.0
    average_power: float = 180_000.0
    reserve: float = 25_000.0
    dt: float = 1.0
    variation_band: float = 0.0  # "99 % of performance within ±band"
    qos_aware_capping: bool = False
    qos_risk_fraction: float = 0.8  # exempt jobs projected beyond this × limit
    work_conserving: bool = False
    # Power-aware admission (§6.4: AQA "primarily reduc[es] power by
    # refraining from scheduling jobs to idle nodes"): defer job starts that
    # would push the cluster's *minimum* enforceable power past the target.
    power_aware_admission: bool = False
    seed: int = 0

    def target(self, y: float) -> float:
        return self.average_power + self.reserve * y


@dataclass
class SimResult:
    """Time series and final job ledger of one simulation."""

    power_trace: np.ndarray  # columns: time, target, measured
    job_table: JobTable
    job_types: list[SimJobType]
    config: SimConfig

    def qos_by_type(self, *, completed_only: bool = True) -> dict[str, np.ndarray]:
        """QoS degradation samples per job type (paper §5.2)."""
        jt = self.job_table
        out: dict[str, np.ndarray] = {}
        sojourn = jt.sojourn_times()
        done = jt.completed_mask()
        for idx, sim_type in enumerate(self.job_types):
            mask = jt.type_idx[: jt.count] == idx
            if completed_only:
                mask = mask & done
            q = sojourn[mask] / sim_type.t_at_p_max - 1.0
            out[sim_type.name] = q
        return out

    def qos_percentile_by_type(self, q: float = 90.0) -> dict[str, float]:
        return {
            name: float(np.percentile(vals, q)) if vals.size else float("nan")
            for name, vals in self.qos_by_type().items()
        }

    def tracking_errors(
        self, *, t_start: float | None = None, t_end: float | None = None
    ) -> np.ndarray:
        """|measured − target| / reserve per sample (§4.4.2).

        ``t_start``/``t_end`` restrict the evaluation to the committed
        demand-response window — tracking is not scored while the cluster is
        still filling up or draining outside its bid period.
        """
        if self.config.reserve <= 0:
            raise ValueError("tracking error undefined with zero reserve")
        tr = self.power_trace
        mask = np.ones(tr.shape[0], dtype=bool)
        if t_start is not None:
            mask &= tr[:, 0] >= t_start
        if t_end is not None:
            mask &= tr[:, 0] <= t_end
        return np.abs(tr[mask, 2] - tr[mask, 1]) / self.config.reserve

    @property
    def completed_jobs(self) -> int:
        return int(self.job_table.completed_mask().sum())


class TabularClusterSimulator:
    """A 1000-node-scale cluster as vectorised state tables."""

    def __init__(
        self,
        job_types: Sequence[SimJobType],
        schedule: Schedule,
        signal,
        config: SimConfig | None = None,
        *,
        queue_weights: dict[str, float] | None = None,
        state_logger=None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if not job_types:
            raise ValueError("need at least one job type")
        self.config = config or SimConfig()
        cfg = self.config
        self.job_types = list(job_types)
        self.type_index = {t.name: i for i, t in enumerate(self.job_types)}
        if len(self.type_index) != len(self.job_types):
            raise ValueError("duplicate job type names")
        self.signal = signal
        self.schedule = schedule
        self._pending = sorted(
            schedule.requests, key=lambda r: (r.submit_time, r.job_id)
        )
        rng = ensure_rng(cfg.seed)
        self.nodes = NodeTable(
            cfg.num_nodes,
            idle_power=cfg.idle_power,
            p_min=cfg.p_node_min,
            p_max=cfg.p_node_max,
        )
        self.nodes.perf_mult = draw_node_multipliers(
            cfg.num_nodes, cfg.variation_band, seed=rng
        )
        self.jobs = JobTable(len(self.job_types))
        queues = QueueSet(
            WorkQueue(t.name, weight=(queue_weights or {}).get(t.name, 1.0))
            for t in self.job_types
        )
        self.scheduler = WeightedScheduler(queues, work_conserving=cfg.work_conserving)
        self._queued_index: dict[str, int] = {}  # job_id -> job table index
        self.now = 0.0
        self._trace: list[tuple[float, float, float]] = []
        # Optional per-tick table dump (§5.6: "we append the current state
        # of all tables to a file").
        self.state_logger = state_logger
        # Cached per-type arrays for the vectorised node update.
        self._t_fast = np.array([t.t_at_p_max for t in self.job_types])
        self._t_slow = np.array([t.t_at_p_min for t in self.job_types])
        self._tp_min = np.array([t.p_min for t in self.job_types])
        self._tp_max = np.array([t.p_max for t in self.job_types])
        self._tp_span = self._tp_max - self._tp_min
        self._t_span_by_type = self._t_fast - self._t_slow
        self._qos_limits = np.array([t.qos_limit for t in self.job_types])
        self._busy_cache: _BusyState | None = None
        self._pending_pos = 0  # intake cursor into the sorted request list
        self._next_submit = (
            self._pending[0].submit_time if self._pending else float("inf")
        )
        self._queued_count = 0  # jobs submitted but not yet started
        # schedule() is a pure function of (idle count, queue contents,
        # running-node shares); when the last round returned an empty
        # decision and none of those inputs changed since, the round can be
        # skipped outright.  Submissions, starts, and completions set dirty.
        self._sched_dirty = True
        self._sched_idle_memo = -1
        # When every busy node carries the same cap (the uniform rule without
        # QoS exemptions), the node update only needs per-*type* arithmetic;
        # the derived per-node rate/power vectors are memoized on the
        # (cap, assignment-version, dt) triple since the cap frequently sits
        # clamped at p_min/p_max for stretches of ticks.
        self._uniform_cap: float | None = None
        self._uniform_cap_version = -1
        self._cap_target_memo = float("nan")  # nan != nan: first call always runs
        self._cap_version_memo = -1
        self._rate_cache: tuple[float, int, float, np.ndarray, np.ndarray] | None = None
        self._power_buf = np.full(cfg.num_nodes, cfg.idle_power)
        # Observability (DESIGN.md §8): gauges on the tabular tier's state.
        self.telemetry = telemetry
        if telemetry.enabled:
            reg = telemetry.registry
            self._mx_ticks = reg.counter(
                "tabsim_ticks_total", "simulated seconds stepped"
            )
            self._mx_power = reg.gauge(
                "tabsim_cluster_power_watts", "tabular cluster measured power"
            )
            self._mx_target = reg.gauge(
                "tabsim_target_watts", "demand-response target"
            )
            self._mx_busy = reg.gauge("tabsim_busy_nodes", "nodes running jobs")
            self._mx_queue = reg.gauge(
                "tabsim_queued_jobs", "jobs submitted but not started"
            )
            self._mx_cap = reg.gauge(
                "tabsim_uniform_cap_watts", "uniform per-node cap (when uniform)"
            )

    def _busy_state(self) -> _BusyState:
        """Current busy-set gathers, refreshed only when assignments change."""
        st = self._busy_cache
        if st is None or st.version != self.nodes.version:
            nodes = self.nodes
            busy_idx = np.flatnonzero(nodes.job_idx >= 0)
            job_of = nodes.job_idx[busy_idx]
            type_of = self.jobs.type_idx[job_of]
            p_lo = self._tp_min[type_of]
            p_hi = self._tp_max[type_of]
            t_fast = self._t_fast[type_of]
            t_slow = self._t_slow[type_of]
            order = np.sort(p_hi)
            prefix = np.concatenate([[0.0], np.cumsum(order)])
            n = busy_idx.size
            lower = np.concatenate([[0.0], order[:-1]]) if n else order
            st = _BusyState(
                version=nodes.version,
                busy_idx=busy_idx,
                job_of=job_of,
                type_of=type_of,
                p_lo=p_lo,
                p_hi=p_hi,
                p_span=p_hi - p_lo,
                t_fast=t_fast,
                t_slow=t_slow,
                t_span=t_fast - t_slow,
                perf=nodes.perf_mult[busy_idx],
                demand_sum=float(p_hi.sum()),
                demand_order=order,
                demand_prefix=prefix,
                demand_denom=n - np.arange(n),
                demand_lower_eps=lower - 1e-12,
                demand_upper_eps=order + 1e-12,
            )
            self._busy_cache = st
        return st

    # --------------------------------------------------------- stage 1: nodes

    def _update_nodes(self, dt: float) -> float:
        """Advance busy-node progress and compute realised power; returns
        the cluster's measured power for this tick."""
        nodes = self.nodes
        st = self._busy_cache
        if st is None or st.version != nodes.version:
            st = self._busy_state()
        busy_idx = st.busy_idx
        power = self._power_buf
        power.fill(nodes.idle_power)
        progress = None
        if busy_idx.size:
            if (
                self._uniform_cap is not None
                and self._uniform_cap_version == nodes.version
            ):
                # Every busy node carries the same scalar cap, so the clamp /
                # interpolation collapses to one evaluation per *job type*
                # followed by a gather — elementwise identical to the
                # per-node arithmetic below (same IEEE ops on equal inputs).
                c = self._uniform_cap
                memo = self._rate_cache
                if memo is not None and memo[:3] == (c, nodes.version, dt):
                    step, busy_power = memo[3], memo[4]
                else:
                    cap_t = np.minimum(np.maximum(c, self._tp_min), self._tp_max)
                    frac_t = (cap_t - self._tp_min) / self._tp_span
                    exec_t = self._t_slow + frac_t * self._t_span_by_type
                    step = (st.perf / exec_t[st.type_of]) * dt
                    busy_power = np.minimum(c, self._tp_max)[st.type_of]
                    self._rate_cache = (c, nodes.version, dt, step, busy_power)
            else:
                cap_raw = nodes.cap[busy_idx]
                cap = np.minimum(np.maximum(cap_raw, st.p_lo), st.p_hi)
                frac = (cap - st.p_lo) / st.p_span
                exec_time = st.t_slow + frac * st.t_span
                step = (st.perf / exec_time) * dt
                busy_power = np.minimum(cap_raw, st.p_hi)
            progress = nodes.progress[busy_idx] + step
            nodes.progress[busy_idx] = progress
            power[busy_idx] = busy_power
        nodes.power = power
        # Completion check: a multi-node job finishes when *all* of its nodes
        # reach 100 % progress (§5.6).  A job's minimum can only reach 1.0
        # when at least one node has, so most ticks skip the reduction.
        if progress is not None and float(progress.max()) >= 1.0:
            running = np.flatnonzero(self.jobs.state[: self.jobs.count] == JobState.RUNNING)
            if running.size:
                min_progress = np.full(self.jobs.count, np.inf)
                np.minimum.at(min_progress, st.job_of, progress)
                for j in running[min_progress[running] >= 1.0]:
                    self.jobs.mark_done(int(j), self.now)
                    sim_type = self.job_types[int(self.jobs.type_idx[j])]
                    self.scheduler.job_finished(sim_type.name, int(self.jobs.nodes[j]))
                    self.nodes.release(int(j))
                    self._sched_dirty = True
        # Release() above rewrites freed nodes' power to idle in-place, so
        # the metered sum must come after the completion sweep.
        return float(power.sum())

    # ----------------------------------------------------- stage 2: arrivals

    def _intake(self) -> None:
        pending = self._pending
        while self._pending_pos < len(pending) and (
            pending[self._pending_pos].submit_time <= self.now
        ):
            req = pending[self._pending_pos]
            self._pending_pos += 1
            type_idx = self.type_index.get(req.type_name)
            if type_idx is None:
                raise KeyError(f"schedule references unknown type {req.type_name!r}")
            job_index = self.jobs.add(type_idx, req.nodes, req.submit_time)
            self._queued_index[req.job_id] = job_index
            self._queued_count += 1
            self._sched_dirty = True
            self.scheduler.queues.submit(
                QueuedJob(
                    job_id=req.job_id,
                    type_name=req.type_name,
                    nodes=req.nodes,
                    submit_time=req.submit_time,
                )
            )
        self._next_submit = (
            pending[self._pending_pos].submit_time
            if self._pending_pos < len(pending)
            else float("inf")
        )

    # ---------------------------------------------------- stage 3: schedule

    def _schedule_jobs(self, target: float) -> None:
        if not self._queued_count:
            # Nothing queued: schedule() would mutate nothing and start
            # nothing, so skip its share accounting entirely.  The counter
            # mirrors ``queues.total_pending`` without walking the queues.
            return
        idle_count = self.nodes.num_nodes - self.nodes.busy_count
        if not self._sched_dirty and idle_count == self._sched_idle_memo:
            return
        decision = self.scheduler.schedule(idle_count)
        if not decision.to_start:
            # Empty decision with no mutations: memoizable until a submit,
            # start, or completion changes the scheduler's inputs.
            self._sched_dirty = False
            self._sched_idle_memo = idle_count
            return
        self._sched_dirty = True
        deferred: list = []
        for queued in decision.to_start:
            if self.config.power_aware_admission and self._would_break_floor(
                queued.nodes, target
            ):
                deferred.append(queued)
                continue
            job_index = self._queued_index.pop(queued.job_id)
            idle = self.nodes.idle_indices()
            chosen = idle[: queued.nodes]
            if chosen.size < queued.nodes:
                raise RuntimeError(
                    f"scheduler started {queued.job_id} without enough idle nodes"
                )
            self.nodes.assign(chosen, job_index)
            self.jobs.mark_started(job_index, self.now)
            self._queued_count -= 1
        # Deferred jobs return to the head of their queues (their node-share
        # accounting was already charged by the scheduler; refund it).
        for queued in deferred:
            queue = self.scheduler.queues[queued.type_name]
            queue.pending.appendleft(queued)
            self.scheduler.job_finished(queued.type_name, queued.nodes)

    def _would_break_floor(self, new_nodes: int, target: float) -> bool:
        """Would starting ``new_nodes`` more make even minimum caps exceed
        the target?  If so, the cluster loses its downward flexibility —
        AQA's scheduler holds the job back instead (§6.4)."""
        busy_after = int(self.nodes.busy_mask.sum()) + new_nodes
        idle_after = self.nodes.num_nodes - busy_after
        floor_power = (
            busy_after * self.nodes.p_min + idle_after * self.nodes.idle_power
        )
        return floor_power > target

    # --------------------------------------------------------- stage 4: caps

    def _cap_power(self, target: float) -> None:
        nodes = self.nodes
        if not self.config.qos_aware_capping:
            # Without QoS exemptions the caps are a pure function of
            # (target, allocation): a zero-order-hold target repeats for
            # several ticks, so the whole waterfill is skippable until the
            # signal steps or the busy set changes.  (The QoS path also
            # depends on per-tick progress, so it cannot take this exit.)
            if target == self._cap_target_memo and nodes.version == self._cap_version_memo:
                return
            self._cap_target_memo = target
            self._cap_version_memo = nodes.version
        st = self._busy_cache
        if st is None or st.version != nodes.version:
            st = self._busy_state()
        busy_idx = st.busy_idx
        if busy_idx.size == 0:
            return
        idle_count = nodes.num_nodes - busy_idx.size
        available = target - idle_count * nodes.idle_power
        if self.config.qos_aware_capping:
            exempt = self._at_risk_mask(st)
            if np.any(exempt):
                # At-risk jobs run uncapped; their demand comes off the
                # budget.  The exempt subset varies tick to tick, so the
                # waterfill re-sorts the remaining demands (and the caps are
                # no longer one shared scalar).
                self._uniform_cap = None
                available -= float(st.p_hi[exempt].sum())
                nodes.cap[busy_idx[exempt]] = nodes.p_max
                capped_idx = busy_idx[~exempt]
                if capped_idx.size == 0:
                    return
                per_node = _waterfill_cap(
                    available, st.p_hi[~exempt], nodes.p_min, nodes.p_max
                )
                nodes.cap[capped_idx] = np.minimum(per_node, nodes.p_max)
                return
        # Uniform cap across active nodes (§4.4.2), waterfilled against each
        # node's precharacterized maximum draw: nodes whose job cannot use
        # the uniform cap release the excess to the others, so the realised
        # power lands on the target whenever it is physically reachable.
        # The sorted demands and prefix sums live in the busy-set cache.
        per_node = _waterfill_scan(
            available,
            st.demand_sum,
            st.demand_order,
            st.demand_prefix,
            st.demand_denom,
            st.demand_lower_eps,
            st.demand_upper_eps,
            nodes.p_min,
            nodes.p_max,
        )
        c = min(per_node, nodes.p_max)
        if c == self._uniform_cap and self._uniform_cap_version == nodes.version:
            return  # caps already hold exactly this value (clamped stretches)
        nodes.cap[busy_idx] = c
        self._uniform_cap = c
        self._uniform_cap_version = nodes.version

    def _at_risk_mask(self, st: _BusyState) -> np.ndarray:
        """Nodes whose job's projected QoS is near its limit (§6.4 feedback)."""
        # Optimistic remaining time: finish the remaining fraction uncapped.
        min_progress = np.full(self.jobs.count, np.inf)
        np.minimum.at(min_progress, st.job_of, self.nodes.progress[st.busy_idx])
        remaining = (1.0 - np.minimum(min_progress[st.job_of], 1.0)) * st.t_fast
        projected_sojourn = (self.now - self.jobs.submit_time[st.job_of]) + remaining
        projected_q = projected_sojourn / st.t_fast - 1.0
        limits = self._qos_limits[st.type_of]
        return projected_q >= self.config.qos_risk_fraction * limits

    # ---------------------------------------------------------------- loop

    def step(self) -> None:
        """One simulated second, in the paper's stage order."""
        dt = self.config.dt
        self.now += dt
        measured = self._update_nodes(dt)
        if self._next_submit <= self.now:
            self._intake()
        target = self.config.target(float(self.signal(self.now)))
        self._schedule_jobs(target)
        self._cap_power(target)
        self._trace.append((self.now, target, measured))
        if self.telemetry.enabled:
            self._mx_ticks.inc()
            self._mx_power.set(measured)
            self._mx_target.set(target)
            self._mx_busy.set(self.nodes.busy_count)
            self._mx_queue.set(self._queued_count)
            if self._uniform_cap is not None:
                self._mx_cap.set(self._uniform_cap)
        if self.state_logger is not None:
            self.state_logger.log(self.now, self.nodes, self.jobs)

    def run(self, duration: float, *, drain: bool = False, max_time: float | None = None) -> SimResult:
        """Simulate ``duration`` seconds; optionally keep going until all
        submitted jobs finish (bounded by ``max_time``)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        limit = max_time if max_time is not None else duration * 4
        while self.now < duration:
            self.step()
        if drain:
            while (
                self._pending_pos < len(self._pending)
                or self._queued_count
                or self.nodes.busy_count
            ) and self.now < limit:
                self.step()
        return SimResult(
            power_trace=np.asarray(self._trace),
            job_table=self.jobs,
            job_types=self.job_types,
            config=self.config,
        )
