"""The per-second tabular cluster simulation loop (paper §5.6).

"Each simulated second, the simulator updates the state of the node table,
then updates the view of the cluster seen by the job scheduler and power
manager, then schedules jobs and caps power.  The policy updates inputs to
the node table that will be processed in the node-update stage of the next
time step."

The power manager applies caps uniformly across active nodes (the AQA rule,
§4.4.2), with an optional QoS-aware variant that exempts at-risk jobs from
capping (§6.4 investigates this feedback path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.aqa.queues import QueuedJob, QueueSet, WorkQueue
from repro.aqa.scheduler import WeightedScheduler
from repro.tabsim.tables import JobState, JobTable, NodeTable, SimJobType
from repro.tabsim.variation import draw_node_multipliers
from repro.util.rng import ensure_rng
from repro.workloads.trace import Schedule

__all__ = ["SimConfig", "SimResult", "TabularClusterSimulator"]


def _waterfill_cap(
    available: float, demand_max: np.ndarray, p_min: float, p_max: float
) -> float:
    """The uniform cap c with Σ min(c, demand_max) = available, clamped.

    Solved by sorting the demands once and scanning the breakpoints — the
    classic waterfilling argument, O(n log n) per budgeting round.
    """
    n = demand_max.size
    if n == 0:
        return p_max
    if available >= float(demand_max.sum()):
        return p_max
    if available <= n * p_min:
        return p_min
    order = np.sort(demand_max)
    # Below breakpoint k (0-based), the first k nodes saturate at their
    # demand and the rest sit at the cap: total(c) = prefix[k] + (n-k)·c.
    prefix = np.concatenate([[0.0], np.cumsum(order)])
    ks = np.arange(n)
    cands = (available - prefix[:-1]) / (n - ks)
    lower = np.concatenate([[0.0], order[:-1]])
    valid = (cands >= lower - 1e-12) & (cands <= order + 1e-12)
    hits = np.flatnonzero(valid)
    c = cands[hits[0]] if hits.size else order[-1]
    return float(np.clip(c, p_min, p_max))


@dataclass
class SimConfig:
    """Cluster and demand-response inputs (paper §5.6).

    "Input cluster properties include average idle power per node, total
    node count, average node utilization, and demand response parameters"
    (``average_power``, ``reserve``, and the regulation ``signal``).
    """

    num_nodes: int = 1000
    idle_power: float = 60.0
    p_node_min: float = 140.0
    p_node_max: float = 280.0
    average_power: float = 180_000.0
    reserve: float = 25_000.0
    dt: float = 1.0
    variation_band: float = 0.0  # "99 % of performance within ±band"
    qos_aware_capping: bool = False
    qos_risk_fraction: float = 0.8  # exempt jobs projected beyond this × limit
    work_conserving: bool = False
    # Power-aware admission (§6.4: AQA "primarily reduc[es] power by
    # refraining from scheduling jobs to idle nodes"): defer job starts that
    # would push the cluster's *minimum* enforceable power past the target.
    power_aware_admission: bool = False
    seed: int = 0

    def target(self, y: float) -> float:
        return self.average_power + self.reserve * y


@dataclass
class SimResult:
    """Time series and final job ledger of one simulation."""

    power_trace: np.ndarray  # columns: time, target, measured
    job_table: JobTable
    job_types: list[SimJobType]
    config: SimConfig

    def qos_by_type(self, *, completed_only: bool = True) -> dict[str, np.ndarray]:
        """QoS degradation samples per job type (paper §5.2)."""
        jt = self.job_table
        out: dict[str, np.ndarray] = {}
        sojourn = jt.sojourn_times()
        done = jt.completed_mask()
        for idx, sim_type in enumerate(self.job_types):
            mask = jt.type_idx[: jt.count] == idx
            if completed_only:
                mask = mask & done
            q = sojourn[mask] / sim_type.t_at_p_max - 1.0
            out[sim_type.name] = q
        return out

    def qos_percentile_by_type(self, q: float = 90.0) -> dict[str, float]:
        return {
            name: float(np.percentile(vals, q)) if vals.size else float("nan")
            for name, vals in self.qos_by_type().items()
        }

    def tracking_errors(
        self, *, t_start: float | None = None, t_end: float | None = None
    ) -> np.ndarray:
        """|measured − target| / reserve per sample (§4.4.2).

        ``t_start``/``t_end`` restrict the evaluation to the committed
        demand-response window — tracking is not scored while the cluster is
        still filling up or draining outside its bid period.
        """
        if self.config.reserve <= 0:
            raise ValueError("tracking error undefined with zero reserve")
        tr = self.power_trace
        mask = np.ones(tr.shape[0], dtype=bool)
        if t_start is not None:
            mask &= tr[:, 0] >= t_start
        if t_end is not None:
            mask &= tr[:, 0] <= t_end
        return np.abs(tr[mask, 2] - tr[mask, 1]) / self.config.reserve

    @property
    def completed_jobs(self) -> int:
        return int(self.job_table.completed_mask().sum())


class TabularClusterSimulator:
    """A 1000-node-scale cluster as vectorised state tables."""

    def __init__(
        self,
        job_types: Sequence[SimJobType],
        schedule: Schedule,
        signal,
        config: SimConfig | None = None,
        *,
        queue_weights: dict[str, float] | None = None,
        state_logger=None,
    ) -> None:
        if not job_types:
            raise ValueError("need at least one job type")
        self.config = config or SimConfig()
        cfg = self.config
        self.job_types = list(job_types)
        self.type_index = {t.name: i for i, t in enumerate(self.job_types)}
        if len(self.type_index) != len(self.job_types):
            raise ValueError("duplicate job type names")
        self.signal = signal
        self.schedule = schedule
        self._pending = sorted(
            schedule.requests, key=lambda r: (r.submit_time, r.job_id)
        )
        rng = ensure_rng(cfg.seed)
        self.nodes = NodeTable(
            cfg.num_nodes,
            idle_power=cfg.idle_power,
            p_min=cfg.p_node_min,
            p_max=cfg.p_node_max,
        )
        self.nodes.perf_mult = draw_node_multipliers(
            cfg.num_nodes, cfg.variation_band, seed=rng
        )
        self.jobs = JobTable(len(self.job_types))
        queues = QueueSet(
            WorkQueue(t.name, weight=(queue_weights or {}).get(t.name, 1.0))
            for t in self.job_types
        )
        self.scheduler = WeightedScheduler(queues, work_conserving=cfg.work_conserving)
        self._queued_index: dict[str, int] = {}  # job_id -> job table index
        self.now = 0.0
        self._trace: list[tuple[float, float, float]] = []
        # Optional per-tick table dump (§5.6: "we append the current state
        # of all tables to a file").
        self.state_logger = state_logger
        # Cached per-type arrays for the vectorised node update.
        self._t_fast = np.array([t.t_at_p_max for t in self.job_types])
        self._t_slow = np.array([t.t_at_p_min for t in self.job_types])
        self._tp_min = np.array([t.p_min for t in self.job_types])
        self._tp_max = np.array([t.p_max for t in self.job_types])

    # --------------------------------------------------------- stage 1: nodes

    def _update_nodes(self, dt: float) -> float:
        """Advance busy-node progress and compute realised power; returns
        the cluster's measured power for this tick."""
        nodes = self.nodes
        busy = nodes.busy_mask
        power = np.full(nodes.num_nodes, nodes.idle_power)
        if np.any(busy):
            job_of = nodes.job_idx[busy]
            type_of = self.jobs.type_idx[job_of]
            p_lo, p_hi = self._tp_min[type_of], self._tp_max[type_of]
            cap = np.clip(nodes.cap[busy], p_lo, p_hi)
            frac = (cap - p_lo) / (p_hi - p_lo)
            exec_time = self._t_slow[type_of] + frac * (
                self._t_fast[type_of] - self._t_slow[type_of]
            )
            rate = nodes.perf_mult[busy] / exec_time
            nodes.progress[busy] = nodes.progress[busy] + rate * dt
            power[busy] = np.minimum(nodes.cap[busy], p_hi)
        nodes.power = power
        # Completion check: a multi-node job finishes when *all* of its nodes
        # reach 100 % progress (§5.6).
        if np.any(busy):
            running = np.flatnonzero(self.jobs.state[: self.jobs.count] == JobState.RUNNING)
            if running.size:
                min_progress = np.full(self.jobs.count, np.inf)
                np.minimum.at(min_progress, nodes.job_idx[busy], nodes.progress[busy])
                for j in running[min_progress[running] >= 1.0]:
                    self.jobs.mark_done(int(j), self.now)
                    sim_type = self.job_types[int(self.jobs.type_idx[j])]
                    self.scheduler.job_finished(sim_type.name, int(self.jobs.nodes[j]))
                    self.nodes.release(int(j))
        return float(power.sum())

    # ----------------------------------------------------- stage 2: arrivals

    def _intake(self) -> None:
        while self._pending and self._pending[0].submit_time <= self.now:
            req = self._pending.pop(0)
            type_idx = self.type_index.get(req.type_name)
            if type_idx is None:
                raise KeyError(f"schedule references unknown type {req.type_name!r}")
            job_index = self.jobs.add(type_idx, req.nodes, req.submit_time)
            self._queued_index[req.job_id] = job_index
            self.scheduler.queues.submit(
                QueuedJob(
                    job_id=req.job_id,
                    type_name=req.type_name,
                    nodes=req.nodes,
                    submit_time=req.submit_time,
                )
            )

    # ---------------------------------------------------- stage 3: schedule

    def _schedule_jobs(self, target: float) -> None:
        decision = self.scheduler.schedule(int(self.nodes.idle_mask.sum()))
        deferred: list = []
        for queued in decision.to_start:
            if self.config.power_aware_admission and self._would_break_floor(
                queued.nodes, target
            ):
                deferred.append(queued)
                continue
            job_index = self._queued_index.pop(queued.job_id)
            idle = self.nodes.idle_indices()
            chosen = idle[: queued.nodes]
            if chosen.size < queued.nodes:
                raise RuntimeError(
                    f"scheduler started {queued.job_id} without enough idle nodes"
                )
            self.nodes.assign(chosen, job_index)
            self.jobs.mark_started(job_index, self.now)
        # Deferred jobs return to the head of their queues (their node-share
        # accounting was already charged by the scheduler; refund it).
        for queued in deferred:
            queue = self.scheduler.queues[queued.type_name]
            queue.pending.appendleft(queued)
            self.scheduler.job_finished(queued.type_name, queued.nodes)

    def _would_break_floor(self, new_nodes: int, target: float) -> bool:
        """Would starting ``new_nodes`` more make even minimum caps exceed
        the target?  If so, the cluster loses its downward flexibility —
        AQA's scheduler holds the job back instead (§6.4)."""
        busy_after = int(self.nodes.busy_mask.sum()) + new_nodes
        idle_after = self.nodes.num_nodes - busy_after
        floor_power = (
            busy_after * self.nodes.p_min + idle_after * self.nodes.idle_power
        )
        return floor_power > target

    # --------------------------------------------------------- stage 4: caps

    def _cap_power(self, target: float) -> None:
        nodes = self.nodes
        busy_idx = np.flatnonzero(nodes.busy_mask)
        if busy_idx.size == 0:
            return
        idle_count = nodes.num_nodes - busy_idx.size
        available = target - idle_count * nodes.idle_power
        exempt = np.zeros(busy_idx.size, dtype=bool)
        if self.config.qos_aware_capping:
            exempt = self._at_risk_mask(busy_idx)
            # At-risk jobs run uncapped; their demand comes off the budget.
            job_of = nodes.job_idx[busy_idx[exempt]]
            type_of = self.jobs.type_idx[job_of]
            available -= float(self._tp_max[type_of].sum())
            nodes.cap[busy_idx[exempt]] = nodes.p_max
        capped_idx = busy_idx[~exempt]
        if capped_idx.size == 0:
            return
        # Uniform cap across active nodes (§4.4.2), waterfilled against each
        # node's precharacterized maximum draw: nodes whose job cannot use
        # the uniform cap release the excess to the others, so the realised
        # power lands on the target whenever it is physically reachable.
        job_of = nodes.job_idx[capped_idx]
        type_of = self.jobs.type_idx[job_of]
        demand_max = self._tp_max[type_of]
        per_node = _waterfill_cap(available, demand_max, nodes.p_min, nodes.p_max)
        nodes.cap[capped_idx] = np.minimum(per_node, nodes.p_max)

    def _at_risk_mask(self, busy_idx: np.ndarray) -> np.ndarray:
        """Nodes whose job's projected QoS is near its limit (§6.4 feedback)."""
        job_of = self.nodes.job_idx[busy_idx]
        type_of = self.jobs.type_idx[job_of]
        # Optimistic remaining time: finish the remaining fraction uncapped.
        min_progress = np.full(self.jobs.count, np.inf)
        busy_all = self.nodes.busy_mask
        np.minimum.at(
            min_progress, self.nodes.job_idx[busy_all], self.nodes.progress[busy_all]
        )
        remaining = (1.0 - np.minimum(min_progress[job_of], 1.0)) * self._t_fast[type_of]
        projected_sojourn = (self.now - self.jobs.submit_time[job_of]) + remaining
        projected_q = projected_sojourn / self._t_fast[type_of] - 1.0
        limits = np.array([t.qos_limit for t in self.job_types])[type_of]
        return projected_q >= self.config.qos_risk_fraction * limits

    # ---------------------------------------------------------------- loop

    def step(self) -> None:
        """One simulated second, in the paper's stage order."""
        dt = self.config.dt
        self.now += dt
        measured = self._update_nodes(dt)
        self._intake()
        target = self.config.target(float(self.signal(self.now)))
        self._schedule_jobs(target)
        self._cap_power(target)
        self._trace.append((self.now, target, measured))
        if self.state_logger is not None:
            self.state_logger.log(self.now, self.nodes, self.jobs)

    def run(self, duration: float, *, drain: bool = False, max_time: float | None = None) -> SimResult:
        """Simulate ``duration`` seconds; optionally keep going until all
        submitted jobs finish (bounded by ``max_time``)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        limit = max_time if max_time is not None else duration * 4
        while self.now < duration:
            self.step()
        if drain:
            while (
                self._pending
                or self.scheduler.queues.total_pending
                or np.any(self.nodes.busy_mask)
            ) and self.now < limit:
                self.step()
        return SimResult(
            power_trace=np.asarray(self._trace),
            job_table=self.jobs,
            job_types=self.job_types,
            config=self.config,
        )
