"""State logging for the tabular simulator (paper §5.6).

"Lastly, before starting the next iteration, we append the current state of
all tables to a file."  :class:`StateLogger` serialises periodic snapshots
of the node and job tables as JSON lines; :func:`read_state_log` loads them
back for post-hoc analysis, so long simulations can be inspected without
holding every tick in memory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.tabsim.tables import JobTable, NodeTable

__all__ = ["StateLogger", "read_state_log"]


class StateLogger:
    """Appends periodic node/job-table snapshots to a JSONL file."""

    def __init__(
        self,
        path: str | Path,
        *,
        every: int = 60,
        include_per_node: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be ≥ 1, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.include_per_node = bool(include_per_node)
        self._ticks = 0
        self._fh: IO[str] | None = None
        self.records_written = 0

    def __enter__(self) -> "StateLogger":
        self._fh = self.path.open("w")
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def log(self, now: float, nodes: NodeTable, jobs: JobTable) -> bool:
        """Record a snapshot if the cadence says so; returns True if written."""
        self._ticks += 1
        if self._ticks % self.every != 0:
            return False
        if self._fh is None:
            self._fh = self.path.open("w")
        busy = nodes.busy_mask
        record: dict = {
            "time": float(now),
            "busy_nodes": int(busy.sum()),
            "idle_nodes": int((~busy).sum()),
            "total_power": float(nodes.power.sum()),
            "mean_cap_busy": float(nodes.cap[busy].mean()) if busy.any() else None,
            "jobs_queued": int(np.sum(jobs.state[: jobs.count] == 0)),
            "jobs_running": int(np.sum(jobs.state[: jobs.count] == 1)),
            "jobs_done": int(np.sum(jobs.state[: jobs.count] == 2)),
        }
        if self.include_per_node:
            record["node_job"] = nodes.job_idx.tolist()
            record["node_cap"] = np.round(nodes.cap, 2).tolist()
            record["node_power"] = np.round(nodes.power, 2).tolist()
        self._fh.write(json.dumps(record) + "\n")
        self.records_written += 1
        return True


def read_state_log(path: str | Path) -> Iterator[dict]:
    """Yield snapshot records from a :class:`StateLogger` file."""
    path = Path(path)
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
