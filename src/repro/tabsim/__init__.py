"""Tabular cluster simulator (paper §5.6).

"The simulator is implemented as a collection of tables that store the
current state of nodes and jobs in the cluster."  Node and job state live in
NumPy arrays so the per-second update is vectorised over the 1000 nodes —
each simulated second updates node progress, refreshes the scheduler/power-
manager view, schedules jobs, caps power, and appends to the history.

Jobs follow a *linear* power-performance relationship here (the paper's
simulator "track[s] the minimum and maximum power and time of each job type,
to simulate a simple linear power-performance relationship"), unlike the
quadratic models of the job tier.
"""

from repro.tabsim.tables import JobState, JobTable, NodeTable, SimJobType
from repro.tabsim.simulator import SimConfig, SimResult, TabularClusterSimulator
from repro.tabsim.variation import variation_sigma_for_band, draw_node_multipliers

__all__ = [
    "JobState",
    "JobTable",
    "NodeTable",
    "SimJobType",
    "SimConfig",
    "SimResult",
    "TabularClusterSimulator",
    "variation_sigma_for_band",
    "draw_node_multipliers",
]
