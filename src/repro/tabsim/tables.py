"""State tables of the tabular simulator (paper §5.6).

"The node table indicates whether a given node is idle, or which job it is
executing, and tracks the current power consumption and current cap applied
to each node.  The job table keeps track of timestamps for queue entry, job
start, and job end, as well as the type of job."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.workloads.nas import JobType

__all__ = ["SimJobType", "NodeTable", "JobTable", "JobState"]


@dataclass(frozen=True)
class SimJobType:
    """Job-type properties the simulator consumes (paper §5.6).

    "Job type properties include the maximum acceptable QoS degradation ...,
    nodes per instance of the job type, maximum power per node while running
    the job, minimum power per node, and the elapsed execution time when the
    job runs with a cap at either of those power levels."
    """

    name: str
    nodes: int
    p_min: float
    p_max: float
    t_at_p_max: float  # fastest execution time (s)
    t_at_p_min: float  # slowest execution time (s)
    qos_limit: float = 5.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"{self.name}: nodes must be ≥ 1")
        if not 0 < self.p_min < self.p_max:
            raise ValueError(f"{self.name}: need 0 < p_min < p_max")
        if not 0 < self.t_at_p_max <= self.t_at_p_min:
            raise ValueError(
                f"{self.name}: need 0 < t_at_p_max ≤ t_at_p_min "
                f"(more power cannot be slower)"
            )

    @classmethod
    def from_job_type(cls, jt: JobType, *, node_scale: int = 1, qos_limit: float = 5.0) -> "SimJobType":
        """Derive simulator properties from a ground-truth catalog entry.

        ``node_scale`` multiplies the node count (§6.4 scales jobs 25×).
        """
        return cls(
            name=jt.name,
            nodes=jt.nodes * node_scale,
            p_min=jt.p_min,
            p_max=jt.p_demand,
            t_at_p_max=jt.compute_time(jt.p_max),
            t_at_p_min=jt.compute_time(jt.p_min),
            qos_limit=qos_limit,
        )

    def execution_time(self, p_cap: float | np.ndarray) -> float | np.ndarray:
        """Linear interpolation of execution time between the two anchors."""
        frac = (np.clip(p_cap, self.p_min, self.p_max) - self.p_min) / (
            self.p_max - self.p_min
        )
        return self.t_at_p_min + frac * (self.t_at_p_max - self.t_at_p_min)

    def progress_rate(self, p_cap: float | np.ndarray) -> float | np.ndarray:
        """Fraction of the job completed per second at cap ``p_cap``."""
        return 1.0 / self.execution_time(p_cap)


class JobState(enum.IntEnum):
    QUEUED = 0
    RUNNING = 1
    DONE = 2


class NodeTable:
    """Vectorised per-node state: assignment, cap, power, variation."""

    def __init__(self, num_nodes: int, *, idle_power: float = 60.0,
                 p_min: float = 140.0, p_max: float = 280.0) -> None:
        if num_nodes < 1:
            raise ValueError(f"need ≥ 1 node, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.idle_power = float(idle_power)
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.job_idx = np.full(num_nodes, -1, dtype=np.int64)  # -1 = idle
        self.cap = np.full(num_nodes, p_max, dtype=float)
        self.power = np.full(num_nodes, idle_power, dtype=float)
        self.perf_mult = np.ones(num_nodes, dtype=float)
        self.progress = np.zeros(num_nodes, dtype=float)  # current job's
        #: Bumped on every assignment change; the simulator caches its
        #: busy-set gathers (and the waterfill's sorted demands) against it.
        self.version = 0
        #: Running count of allocated nodes (== busy_mask.sum()).
        self.busy_count = 0

    @property
    def idle_mask(self) -> np.ndarray:
        return self.job_idx < 0

    @property
    def busy_mask(self) -> np.ndarray:
        return self.job_idx >= 0

    def idle_indices(self) -> np.ndarray:
        return np.flatnonzero(self.idle_mask)

    def assign(self, node_indices: np.ndarray, job_index: int) -> None:
        if np.any(self.job_idx[node_indices] >= 0):
            raise RuntimeError("assigning a job to non-idle nodes")
        self.job_idx[node_indices] = job_index
        self.progress[node_indices] = 0.0
        self.cap[node_indices] = self.p_max
        self.version += 1
        self.busy_count += len(node_indices)

    def release(self, job_index: int) -> None:
        mask = self.job_idx == job_index
        self.busy_count -= int(mask.sum())
        self.job_idx[mask] = -1
        self.progress[mask] = 0.0
        self.cap[mask] = self.p_max
        self.power[mask] = self.idle_power
        self.version += 1


class JobTable:
    """Append-only job ledger with growable parallel arrays."""

    _GROW = 256

    def __init__(self, num_types: int) -> None:
        self.num_types = int(num_types)
        self._cap = self._GROW
        self.count = 0
        self.type_idx = np.zeros(self._cap, dtype=np.int64)
        self.nodes = np.zeros(self._cap, dtype=np.int64)
        self.submit_time = np.zeros(self._cap, dtype=float)
        self.start_time = np.full(self._cap, np.nan, dtype=float)
        self.end_time = np.full(self._cap, np.nan, dtype=float)
        self.state = np.full(self._cap, JobState.QUEUED, dtype=np.int64)

    def _grow(self) -> None:
        new_cap = self._cap + self._GROW
        for name in ("type_idx", "nodes", "submit_time", "start_time", "end_time", "state"):
            arr = getattr(self, name)
            grown = np.empty(new_cap, dtype=arr.dtype)
            grown[: self._cap] = arr
            if name in ("start_time", "end_time"):
                grown[self._cap:] = np.nan
            else:
                grown[self._cap:] = 0
            setattr(self, name, grown)
        self._cap = new_cap

    def add(self, type_idx: int, nodes: int, submit_time: float) -> int:
        """Record a queued job; returns its job index."""
        if not 0 <= type_idx < self.num_types:
            raise IndexError(f"type index {type_idx} out of range")
        if self.count == self._cap:
            self._grow()
        i = self.count
        self.type_idx[i] = type_idx
        self.nodes[i] = nodes
        self.submit_time[i] = submit_time
        self.state[i] = JobState.QUEUED
        self.count += 1
        return i

    def mark_started(self, job_index: int, now: float) -> None:
        self._check(job_index)
        if self.state[job_index] != JobState.QUEUED:
            raise RuntimeError(f"job {job_index} is not queued")
        self.start_time[job_index] = now
        self.state[job_index] = JobState.RUNNING

    def mark_done(self, job_index: int, now: float) -> None:
        self._check(job_index)
        if self.state[job_index] != JobState.RUNNING:
            raise RuntimeError(f"job {job_index} is not running")
        self.end_time[job_index] = now
        self.state[job_index] = JobState.DONE

    def _check(self, job_index: int) -> None:
        if not 0 <= job_index < self.count:
            raise IndexError(f"job index {job_index} out of range [0, {self.count})")

    # ------------------------------------------------------------- analysis

    def sojourn_times(self) -> np.ndarray:
        """end − submit for completed jobs (NaN for incomplete)."""
        view = self.end_time[: self.count] - self.submit_time[: self.count]
        return view

    def completed_mask(self) -> np.ndarray:
        return self.state[: self.count] == JobState.DONE

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of the live columns (the per-tick state dump of §5.6)."""
        return {
            "type_idx": self.type_idx[: self.count].copy(),
            "nodes": self.nodes[: self.count].copy(),
            "submit_time": self.submit_time[: self.count].copy(),
            "start_time": self.start_time[: self.count].copy(),
            "end_time": self.end_time[: self.count].copy(),
            "state": self.state[: self.count].copy(),
        }
