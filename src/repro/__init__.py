"""ANOR: an end-to-end HPC framework for dynamic power objectives.

A from-scratch reproduction of Wilson et al., *An End-to-End HPC Framework
for Dynamic Power Objectives* (SC-W 2023): a two-tier, feedback-driven power
management framework for HPC clusters participating in demand response,
together with every substrate its evaluation needs — a GEOPM-subset runtime,
an emulated RAPL cluster, the AQA demand-response layer, and a 1000-node
tabular simulator.

Quick start::

    from repro import AnorConfig, AnorSystem, ConstantTarget, EvenSlowdownBudgeter

    system = AnorSystem(
        budgeter=EvenSlowdownBudgeter(),
        target_source=ConstantTarget(840.0),
        config=AnorConfig(num_nodes=4, seed=42),
    )
    system.submit_now("bt-0", "bt")
    system.submit_now("sp-0", "sp")
    result = system.run(until_idle=True)

See ``examples/`` for runnable scenarios and ``repro.experiments`` for the
paper-figure harnesses.
"""

from repro.budget import EvenPowerBudgeter, EvenSlowdownBudgeter, UniformCapBudgeter
from repro.core import (
    AnorConfig,
    AnorSystem,
    ConstantTarget,
    RegulationTarget,
    SteppedTarget,
)
from repro.modeling import JobClassifier, OnlineModeler, QuadraticPowerModel
from repro.workloads import NAS_TYPES, JobType, PoissonScheduleGenerator, Schedule

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnorConfig",
    "AnorSystem",
    "ConstantTarget",
    "RegulationTarget",
    "SteppedTarget",
    "EvenPowerBudgeter",
    "EvenSlowdownBudgeter",
    "UniformCapBudgeter",
    "JobClassifier",
    "OnlineModeler",
    "QuadraticPowerModel",
    "NAS_TYPES",
    "JobType",
    "PoissonScheduleGenerator",
    "Schedule",
]
