"""Deterministic random-number-generator plumbing.

All stochastic code in :mod:`repro` accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalises those three cases; :func:`spawn_rng`/:func:`derive_rng` derive
independent child streams so that adding randomness to one subsystem never
perturbs the draws seen by another.
"""

from __future__ import annotations

from typing import Union

import numpy as np

Seedlike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def ensure_rng(seed: Seedlike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged, so callers can thread
    a single stream through a pipeline; anything else constructs a fresh
    PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent child generators.

    The parent generator is consumed (one draw) to derive the children, which
    keeps the parent usable afterwards while guaranteeing the children do not
    overlap with each other.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_rng(rng: np.random.Generator, *tags: object) -> np.random.Generator:
    """Derive a child generator keyed by hashable ``tags``.

    Unlike :func:`spawn_rng` this does not consume state from the parent:
    the child depends only on the parent's *initial* entropy and the tags,
    so components created in any order observe identical streams.  The parent
    must have been created by :func:`ensure_rng` (PCG64 bit generator).
    """
    state = rng.bit_generator.state
    # PCG64 exposes its 128-bit state; fold it with the tag hash.
    base = state["state"]["state"] if "state" in state.get("state", {}) else 0
    tag_hash = hash(tags) & 0x7FFF_FFFF_FFFF_FFFF
    return np.random.default_rng((base ^ tag_hash) & 0x7FFF_FFFF_FFFF_FFFF)
