"""Shared utilities: deterministic RNG plumbing, simulation clock, math helpers.

Every stochastic component in this package draws randomness from an explicit
:class:`numpy.random.Generator`, usually derived through :func:`spawn_rng`
so that independent subsystems get independent, reproducible streams.
"""

from repro.util.rng import derive_rng, ensure_rng, spawn_rng
from repro.util.clock import SimClock, PeriodicTask, TaskScheduler
from repro.util.maths import (
    bisect_scalar,
    clamp,
    monotone_decreasing,
    weighted_percentile,
)
from repro.util.stats import RunningStats, confidence_interval_95, percentile

__all__ = [
    "derive_rng",
    "ensure_rng",
    "spawn_rng",
    "SimClock",
    "PeriodicTask",
    "TaskScheduler",
    "bisect_scalar",
    "clamp",
    "monotone_decreasing",
    "weighted_percentile",
    "RunningStats",
    "confidence_interval_95",
    "percentile",
]
