"""Small numeric helpers shared across budgeters, models, and simulators."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty interval: lo={lo} > hi={hi}")
    return lo if value < lo else hi if value > hi else value


def bisect_scalar(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float:
    """Find x in [lo, hi] with func(x) ≈ 0 for a monotone ``func``.

    Used by the even-slowdown budgeter to solve for the common slowdown
    factor.  If ``func`` has the same sign at both ends, the endpoint whose
    value is closest to zero is returned — for budgeting this corresponds to
    saturating every job at its minimum or maximum cap, which is exactly the
    clipping behaviour the paper describes at extreme budgets (§6.1.1).

    Raises :class:`RuntimeError` after ``max_iter`` halvings without meeting
    ``tol``.  Reaching the cap means the objective cannot be bisected to the
    requested tolerance (e.g. a discontinuous step with ``tol=0``), and a
    silently returned midpoint would feed an unconverged cap into the
    budgeter.
    """
    if hi < lo:
        raise ValueError(f"empty bracket: [{lo}, {hi}]")
    f_lo, f_hi = func(lo), func(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if np.sign(f_lo) == np.sign(f_hi):
        return lo if abs(f_lo) <= abs(f_hi) else hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid)
        if f_mid == 0.0 or (hi - lo) < tol:
            return mid
        if np.sign(f_mid) == np.sign(f_lo):
            lo, f_lo = mid, f_mid
        else:
            hi = mid
    raise RuntimeError(
        f"bisect_scalar did not converge within max_iter={max_iter}: "
        f"bracket [{lo}, {hi}] still wider than tol={tol}"
    )


def monotone_decreasing(values: Sequence[float], *, strict: bool = False) -> bool:
    """True when ``values`` never increase (or strictly decrease)."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        return True
    diffs = np.diff(arr)
    return bool(np.all(diffs < 0) if strict else np.all(diffs <= 0))


def weighted_percentile(
    values: Sequence[float],
    weights: Sequence[float],
    q: float,
) -> float:
    """Weighted percentile (q in [0, 100]) using the cumulative-weight rule.

    Each value contributes mass proportional to its weight; the result is the
    smallest value whose cumulative weight fraction reaches q/100.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {w.shape}")
    if v.size == 0:
        raise ValueError("cannot take percentile of empty data")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total == 0:
        raise ValueError("weights sum to zero")
    order = np.argsort(v, kind="stable")
    v, w = v[order], w[order]
    cum = np.cumsum(w) / total
    idx = int(np.searchsorted(cum, q / 100.0, side="left"))
    return float(v[min(idx, v.size - 1)])
