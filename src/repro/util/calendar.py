"""Event calendar: how far can the simulation stride before anything fires?

The tick-driven :meth:`AnorSystem.step` loop pays full Python overhead on
every simulated second even when no control round, agent sample, fault, or
message event is due.  The event-driven loop instead asks this calendar for
the number of upcoming tick instants that are *event-free* and advances the
hardware emulator analytically across the whole run of them (a "stride"),
executing the ordinary per-tick path only at instants where some source
fires.

Correctness contract — the calendar must be *exact*, not approximate: a
tick is event-free precisely when every registered source, evaluated with
its own comparison arithmetic, would decline to fire at that instant.  Two
source shapes cover the whole control plane:

* **gates** — :class:`~repro.util.clock.PeriodicGate` instances.  A gate
  declines at ``t`` iff ``t + eps < anchor + fires·period`` (the exact
  test inside :meth:`PeriodicGate.due`); an unanchored gate fires on its
  first poll, so it allows no free ticks at all.
* **instants** — absolute times guarding ``event_time <= now`` checks
  (fault firings, schedule intake, endpoint restarts, reconnect backoff).
  A tick ``t`` is free iff ``t < event_time``.

:meth:`free_ticks` replays those comparisons elementwise over the exact
float tick sequence (see :meth:`SimClock.tick_times`), so the stride
boundary lands on precisely the tick the per-tick loop would have fired
on — bit-identical schedules, including under accumulated float drift.
:meth:`horizon` is only a cheap scalar *estimate* used to skip the array
work when the next event is imminent; it never decides correctness.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.clock import PeriodicGate

__all__ = ["EventCalendar"]


class EventCalendar:
    """Collects event sources and counts leading event-free tick instants."""

    __slots__ = ("_gates", "_instants")

    def __init__(self) -> None:
        self._gates: list[PeriodicGate] = []
        self._instants: list[float] = []

    def add_gate(self, gate: PeriodicGate) -> None:
        """Register a periodic gate polled once per tick."""
        self._gates.append(gate)

    def add_instant(self, time: float) -> None:
        """Register an absolute instant guarding an ``event <= now`` check."""
        self._instants.append(float(time))

    def horizon(self) -> float:
        """Scalar estimate of the earliest instant any source could fire.

        ``-inf`` when some gate is unanchored (it fires on its next poll),
        ``+inf`` when nothing is registered.  Callers use this only to size
        the candidate tick window; :meth:`free_ticks` is the authority.
        """
        bound = math.inf
        for gate in self._gates:
            edge = gate.next_due - gate.eps
            if edge < bound:
                bound = edge
        for time in self._instants:
            if time < bound:
                bound = time
        return bound

    def free_ticks(self, times: np.ndarray) -> int:
        """Exact count of leading ticks in ``times`` at which nothing fires.

        ``times`` must be the increasing tick sequence the per-tick loop
        would visit (:meth:`SimClock.tick_times`).  Each source's own
        comparison is replayed elementwise, so the returned prefix length
        equals the number of iterations the tick loop would complete before
        its first firing.
        """
        n = len(times)
        for gate in self._gates:
            anchor, fires = gate.phase
            if anchor is None:
                return 0  # unanchored gates fire on the very next poll
            next_due = anchor + fires * gate.period
            free = int(np.count_nonzero((times + gate.eps) < next_due))
            if free < n:
                n = free
                if n == 0:
                    return 0
        for time in self._instants:
            free = int(np.count_nonzero(times < time))
            if free < n:
                n = free
                if n == 0:
                    return 0
        return n
