"""Simulation clock and periodic-task scheduling.

The hardware-cluster emulator and the ANOR control plane advance a shared
:class:`SimClock` in fixed ticks.  Components that run at their own cadence
(the GEOPM agent every second, the cluster manager every few seconds) are
registered as :class:`PeriodicTask` entries in a :class:`TaskScheduler`,
which fires them in deterministic priority order at each tick.  This mirrors
the paper's asynchronous tiers (§7.2) without threads: asynchrony comes from
differing periods and message-transport latency, and remains reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0, tick: float = 1.0):
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self._now = float(start)
        self.tick = float(tick)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float | None = None) -> float:
        """Advance by ``dt`` seconds (default: one tick) and return new time."""
        step = self.tick if dt is None else float(dt)
        if step < 0:
            raise ValueError(f"cannot advance clock backwards by {step}")
        self._now += step
        return self._now

    def tick_times(self, count: int, dt: float | None = None) -> np.ndarray:
        """The next ``count`` instants repeated :meth:`advance` would visit.

        ``np.cumsum`` over ``[now, dt, dt, …]`` is an ordered left-to-right
        accumulation, so each element is bit-identical to the float the
        ``_now += step`` chain would produce — event-driven stepping relies
        on this to compare against gate grids with zero drift.  The clock
        itself does not move; pair with :meth:`advance_to`.
        """
        if count < 0:
            raise ValueError(f"count must be ≥ 0, got {count}")
        step = self.tick if dt is None else float(dt)
        if step < 0:
            raise ValueError(f"cannot advance clock backwards by {step}")
        chain = np.empty(count + 1)
        chain[0] = self._now
        chain[1:] = step
        return np.cumsum(chain)[1:]

    def advance_to(self, time: float) -> float:
        """Jump directly to ``time`` (an instant from :meth:`tick_times`)."""
        if time < self._now:
            raise ValueError(f"cannot advance clock backwards to {time}")
        self._now = float(time)
        return self._now


class PeriodicGate:
    """Grid-anchored period gate for poll-style control loops.

    Replaces the ``next = now + period - 1e-9`` re-anchoring pattern: that
    form leaks an epsilon per firing into the schedule, and — worse —
    re-anchoring at the *actual* fire time rounds the effective period up to
    the caller's polling interval (a 2.5 s period polled every 1 s fires
    every 3 s).  The gate instead anchors an absolute grid at the first
    firing and computes every later due-instant as ``anchor + k·period``
    with integer ``k``: over a horizon of N periods it fires exactly N
    times, regardless of tick size or float accumulation.
    """

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = float(period)
        self._anchor: float | None = None
        self._fires = 0
        # Relative tolerance absorbs accumulated tick-sum error in ``now``
        # without shifting the grid: a poll landing within period·1e-9 below
        # a grid instant counts as having reached it.
        self._eps = self.period * 1e-9

    @property
    def next_due(self) -> float:
        """The next grid instant; -inf before the first firing."""
        if self._anchor is None:
            return float("-inf")
        return self._anchor + self._fires * self.period

    @property
    def eps(self) -> float:
        """The tolerance :meth:`due` applies below a grid instant.

        Exposed so the event calendar can replay the exact comparison —
        ``now + eps < anchor + fires·period`` — when deciding how many
        ticks are free of this gate.
        """
        return self._eps

    @property
    def phase(self) -> tuple[float | None, int]:
        """``(anchor, fires)`` — enough to reconstruct the grid elsewhere."""
        return (self._anchor, self._fires)

    def restore(self, anchor: float | None, fires: int) -> None:
        """Re-install a previously captured :attr:`phase`.

        Used by head-node recovery: a restarted manager must keep firing on
        the *original* k·period grid, not re-anchor at whatever instant the
        restart happened to land on.  Instants slept through while down
        collapse into one firing, exactly like a slow poller's.
        """
        if anchor is not None and not isinstance(anchor, (int, float)):
            raise TypeError(f"anchor must be a float or None, got {anchor!r}")
        self._anchor = None if anchor is None else float(anchor)
        self._fires = int(fires)

    def due(self, now: float) -> bool:
        """True exactly when ``now`` reached the next grid instant.

        A True return advances the gate.  The first poll always fires and
        anchors the grid.  Grid instants the caller slept through collapse
        into one firing (matching the control loops this gates: a missed
        manager period is simply a late re-budget, not a burst of them).
        """
        if self._anchor is None:
            self._anchor = now
            self._fires = 1
            return True
        if now + self._eps < self._anchor + self._fires * self.period:
            return False
        skipped_past = int((now - self._anchor + self._eps) // self.period) + 1
        self._fires = max(self._fires + 1, skipped_past)
        return True


@dataclass(order=True)
class PeriodicTask:
    """A callback fired every ``period`` seconds of simulated time.

    Ordering is (next_fire, priority, name) so that concurrent firings are
    deterministic; lower priority values run first.
    """

    next_fire: float
    priority: int
    name: str = field(compare=True)
    period: float = field(compare=False, default=1.0)
    callback: Callable[[float], None] = field(compare=False, default=lambda now: None)
    enabled: bool = field(compare=False, default=True)

    def fire(self, now: float) -> None:
        self.callback(now)
        self.next_fire += self.period


class TaskScheduler:
    """Deterministic periodic-task runner driven by an external clock."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._tasks: List[PeriodicTask] = []

    def add(
        self,
        name: str,
        period: float,
        callback: Callable[[float], None],
        *,
        priority: int = 0,
        phase: float | None = None,
    ) -> PeriodicTask:
        """Register ``callback`` to run every ``period`` seconds.

        The first firing is ``phase`` seconds from now (default: one full
        period).  If the clock jumps past several due instants, the task
        catches up with one firing per missed instant.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        task = PeriodicTask(
            next_fire=self.clock.now + (period if phase is None else phase),
            priority=priority,
            name=name,
            period=period,
            callback=callback,
        )
        self._tasks.append(task)
        return task

    def remove(self, task: PeriodicTask) -> None:
        self._tasks.remove(task)

    def run_due(self) -> int:
        """Fire every enabled task due at or before the current time.

        Tasks are fired in (time, priority, name) order; a task firing may
        enqueue messages consumed by later tasks in the same tick.  Returns
        the number of callbacks fired.
        """
        now = self.clock.now
        fired = 0
        # A task may be due multiple times if the clock jumped several periods.
        while True:
            due = sorted(t for t in self._tasks if t.enabled and t.next_fire <= now)
            if not due:
                return fired
            for task in due:
                task.fire(now)
                fired += 1

    def step(self, dt: float | None = None) -> int:
        """Advance the clock then run due tasks; returns callbacks fired."""
        self.clock.advance(dt)
        return self.run_due()
