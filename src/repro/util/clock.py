"""Simulation clock and periodic-task scheduling.

The hardware-cluster emulator and the ANOR control plane advance a shared
:class:`SimClock` in fixed ticks.  Components that run at their own cadence
(the GEOPM agent every second, the cluster manager every few seconds) are
registered as :class:`PeriodicTask` entries in a :class:`TaskScheduler`,
which fires them in deterministic priority order at each tick.  This mirrors
the paper's asynchronous tiers (§7.2) without threads: asynchrony comes from
differing periods and message-transport latency, and remains reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0, tick: float = 1.0):
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self._now = float(start)
        self.tick = float(tick)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float | None = None) -> float:
        """Advance by ``dt`` seconds (default: one tick) and return new time."""
        step = self.tick if dt is None else float(dt)
        if step < 0:
            raise ValueError(f"cannot advance clock backwards by {step}")
        self._now += step
        return self._now


@dataclass(order=True)
class PeriodicTask:
    """A callback fired every ``period`` seconds of simulated time.

    Ordering is (next_fire, priority, name) so that concurrent firings are
    deterministic; lower priority values run first.
    """

    next_fire: float
    priority: int
    name: str = field(compare=True)
    period: float = field(compare=False, default=1.0)
    callback: Callable[[float], None] = field(compare=False, default=lambda now: None)
    enabled: bool = field(compare=False, default=True)

    def fire(self, now: float) -> None:
        self.callback(now)
        self.next_fire += self.period


class TaskScheduler:
    """Deterministic periodic-task runner driven by an external clock."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._tasks: List[PeriodicTask] = []

    def add(
        self,
        name: str,
        period: float,
        callback: Callable[[float], None],
        *,
        priority: int = 0,
        phase: float | None = None,
    ) -> PeriodicTask:
        """Register ``callback`` to run every ``period`` seconds.

        The first firing is ``phase`` seconds from now (default: one full
        period).  If the clock jumps past several due instants, the task
        catches up with one firing per missed instant.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        task = PeriodicTask(
            next_fire=self.clock.now + (period if phase is None else phase),
            priority=priority,
            name=name,
            period=period,
            callback=callback,
        )
        self._tasks.append(task)
        return task

    def remove(self, task: PeriodicTask) -> None:
        self._tasks.remove(task)

    def run_due(self) -> int:
        """Fire every enabled task due at or before the current time.

        Tasks are fired in (time, priority, name) order; a task firing may
        enqueue messages consumed by later tasks in the same tick.  Returns
        the number of callbacks fired.
        """
        now = self.clock.now
        fired = 0
        # A task may be due multiple times if the clock jumped several periods.
        while True:
            due = sorted(t for t in self._tasks if t.enabled and t.next_fire <= now)
            if not due:
                return fired
            for task in due:
                task.fire(now)
                fired += 1

    def step(self, dt: float | None = None) -> int:
        """Advance the clock then run due tasks; returns callbacks fired."""
        self.clock.advance(dt)
        return self.run_due()
