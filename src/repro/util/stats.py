"""Streaming statistics and interval estimates used by experiment harnesses."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class RunningStats:
    """Welford-style streaming mean/variance accumulator.

    Used for per-job-type slowdown summaries and power-sample statistics
    without retaining full sample arrays in the long simulations.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, x: float) -> None:
        x = float(x)
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Sequence[float]) -> None:
        for x in xs:
            self.push(x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (requires at least two samples)."""
        if self._n < 2:
            raise ValueError("variance needs at least 2 samples")
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def max(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStats()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * (other._n / n)
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._n * other._n / n
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


def confidence_interval_95(samples: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95 % CI half-widths around the sample mean.

    Returns (mean, half_width).  With fewer than two samples the half-width
    is 0 — the experiment harnesses plot the point estimate alone.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, 0.0
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, 1.96 * sem


def percentile(samples: Sequence[float], q: float) -> float:
    """Plain linear-interpolation percentile, q in [0, 100]."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    return float(np.percentile(arr, q))
